#include "minimpi/comm.h"

#include <algorithm>
#include <cstring>

#include "array/wire_codec.h"
#include "common/error.h"
#include "minimpi/runtime_state.h"
#include "obs/drift.h"
#include "obs/trace.h"

namespace cubist {
namespace {

/// Position of `rank` within `group`, -1 when absent. Hoisted out of the
/// collectives' round loops — one scan per call, not one per round.
int index_in_group(std::span<const int> group, int rank) {
  for (int i = 0; i < static_cast<int>(group.size()); ++i) {
    if (group[i] == rank) return i;
  }
  return -1;
}

}  // namespace

Comm::Comm(RuntimeState& state, int rank) : state_(state), rank_(rank) {}

int Comm::size() const { return state_.size(); }

const CostModel& Comm::model() const { return state_.model(); }

void Comm::charge_compute(std::int64_t cells_scanned, std::int64_t updates) {
  clock_ += state_.model().seconds_for_scan(static_cast<double>(cells_scanned));
  clock_ += state_.model().seconds_for_updates(static_cast<double>(updates));
}

std::uint64_t Comm::trace(const TraceEvent& event) {
  const bool hb = state_.tracing();
  const bool timeline = obs::Tracer::enabled();
  if (!hb && !timeline) return kNoTraceSeq;
  const std::uint64_t seq = trace_seq_++;
  if (hb) {
    [[maybe_unused]] const std::uint64_t index =
        state_.record_event(rank_, event);
    CUBIST_DCHECK(index == seq, "event trace index diverged from trace_seq_");
  }
  if (timeline) {
    // Mirror onto this rank's obs track. The bridge relies on comm
    // instants appearing in seq order per thread (they do: one emitter,
    // one counter) and on match/operand seqs riding along as tags;
    // kNoTraceSeq is representable as -1.
    obs::Instant("comm", to_string(event.kind))
        .tag("peer", static_cast<std::int64_t>(event.peer))
        .tag("tag", static_cast<std::int64_t>(event.tag))
        .tag("units", event.units)
        .tag("match", static_cast<std::int64_t>(event.match_seq))
        .tag("operand", static_cast<std::int64_t>(event.operand_seq));
  }
  return seq;
}

void Comm::send_wire(int dst, std::uint64_t tag, std::int64_t logical_bytes,
                     std::vector<std::byte> payload) {
  CUBIST_CHECK(dst >= 0 && dst < size(), "bad destination rank " << dst);
  CUBIST_CHECK(dst != rank_, "self-send is not supported");
  const auto wire_bytes = static_cast<std::int64_t>(payload.size());
  // Sender is occupied for the per-message overhead plus the injection of
  // what actually hits the link (the wire bytes); the receiver may consume
  // the message one wire latency later. Every cost is the EDGE's — an
  // inter-node message pays the topology's expensive link class.
  const LinkCost link = state_.model().link(rank_, dst);
  clock_ +=
      link.overhead + link.transfer_seconds(static_cast<double>(wire_bytes));
  Message message;
  message.payload = std::move(payload);
  message.arrival_time = clock_ + link.latency;
  message.trace_seq =
      trace({TraceEventKind::kSend, dst, tag, logical_bytes});
  state_.ledger().record(tag, logical_bytes, wire_bytes);
  logical_bytes_sent_ += logical_bytes;
  wire_bytes_sent_ += wire_bytes;
  state_.transport().deliver(dst, rank_, tag, std::move(message));
}

void Comm::send_bytes(int dst, std::uint64_t tag,
                      std::span<const std::byte> data) {
  send_wire(dst, tag, static_cast<std::int64_t>(data.size()),
            std::vector<std::byte>(data.begin(), data.end()));
}

std::vector<std::byte> Comm::recv_bytes(int src, std::uint64_t tag) {
  CUBIST_CHECK(src >= 0 && src < size(), "bad source rank " << src);
  CUBIST_CHECK(src != rank_, "self-receive is not supported");
  Message message = state_.transport().receive(rank_, src, tag);
  clock_ = std::max(clock_, message.arrival_time);
  TraceEvent event{TraceEventKind::kRecv, src, tag,
                   static_cast<std::int64_t>(message.payload.size())};
  event.match_seq = message.trace_seq;
  last_recv_seq_ = trace(event);
  return std::move(message.payload);
}

std::pair<int, std::vector<std::byte>> Comm::recv_wire_any(
    std::uint64_t tag, const std::function<bool(int)>& accept) {
  auto [source, message] = state_.transport().receive_any(rank_, tag, accept);
  clock_ = std::max(clock_, message.arrival_time);
  TraceEvent event{TraceEventKind::kRecvAny, source, tag,
                   static_cast<std::int64_t>(message.payload.size())};
  event.match_seq = message.trace_seq;
  last_recv_seq_ = trace(event);
  return {source, std::move(message.payload)};
}

std::pair<int, std::vector<std::byte>> Comm::recv_bytes_any(
    std::uint64_t tag) {
  return recv_wire_any(tag, nullptr);
}

void Comm::send_values(int dst, std::uint64_t tag,
                       std::span<const Value> data) {
  send_bytes(dst, tag, std::as_bytes(data));
}

std::vector<Value> Comm::recv_values(int src, std::uint64_t tag) {
  const std::vector<std::byte> raw = recv_bytes(src, tag);
  CUBIST_ASSERT(raw.size() % sizeof(Value) == 0, "payload not Value-aligned");
  std::vector<Value> values(raw.size() / sizeof(Value));
  std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

void Comm::reduce(std::span<const int> group, DenseArray& data,
                  std::uint64_t tag, AggregateOp op,
                  const ReduceOptions& options) {
  const int g = static_cast<int>(group.size());
  CUBIST_CHECK(g >= 1, "empty reduction group");
  CUBIST_CHECK(options.max_message_elements >= 0, "negative message cap");
  const int me = index_in_group(group, rank_);
  CUBIST_CHECK(me >= 0, "rank " << rank_ << " not in reduction group");

  const std::int64_t total = data.size();
  // Zero-size blocks (and singleton groups) never touch the wire.
  if (total == 0 || g == 1) return;
  // Resolve the schedule (kAuto through the cost tuner) on static inputs
  // only, so analysis/comm_plan.cpp resolves to the identical choice.
  const ReduceAlgorithm algorithm = resolve_reduce_algorithm(
      options.algorithm, group, total, options.max_message_elements,
      state_.model(), options.density_hint, options.wire.enabled);
  const std::int64_t piece = reduce_chunk_elements(
      algorithm, total, g, options.max_message_elements);
  const std::vector<ReduceStep> steps =
      reduce_chunk_steps(algorithm, group, me, state_.model().topology);

  // Timeline span for the whole collective; the certified drift ratio is
  // produced by the barrier-aligned calibration replay
  // (minimpi/drift_calibration.h), but the per-call tuner prediction
  // rides along here as a tag so skew is visible in the trace.
  obs::Span span("comm", "reduce");
  const double clock_at_entry = clock_;
  if (span.active()) {
    span.tag("algorithm", to_string(algorithm))
        .tag("elements", total)
        .tag("group", static_cast<std::int64_t>(g))
        .tag("root", static_cast<std::int64_t>(group[0]));
    if (obs::drift_enabled()) {
      span.tag("sim_seconds",
               simulate_reduce_seconds(algorithm, group, total,
                                       options.max_message_elements,
                                       state_.model(), options.density_hint,
                                       options.wire.enabled));
    }
  }

  // Chunk-outer pipeline: each chunk runs its full schedule (fold from
  // below, then — for non-root members — ship upward) before the next
  // chunk starts, so a member forwards chunk i while chunk i+1 is still
  // in flight from its children. Per destination cell the combine order
  // is the schedule's fixed step order, identical for every chunk size —
  // the chunking is invisible in the output bits.
  for (std::int64_t offset = 0; offset < total; offset += piece) {
    const std::int64_t count = std::min(piece, total - offset);
    const std::span<Value> chunk(data.data() + offset,
                                 static_cast<std::size_t>(count));
    if (options.fault == ReduceOptions::Fault::kArrivalOrderCombine) {
      // The fault path exists to exercise the HB auditor on the classic
      // arrival-order bug; it is defined over the binomial children.
      reduce_chunk_arrival_order(group, me, chunk, tag, op, options);
      continue;
    }
    for (const ReduceStep& step : steps) {
      if (step.kind == ReduceStep::Kind::kSend) {
        send_wire(step.peer, tag,
                  count * static_cast<std::int64_t>(sizeof(Value)),
                  encode_chunk(chunk, op, options.wire));
      } else {
        const std::vector<std::byte> payload = recv_bytes(step.peer, tag);
        const std::int64_t updates =
            combine_chunk(op, chunk, payload, options.combine_pool,
                          options.combine_workers);
        TraceEvent combined{TraceEventKind::kCombine, step.peer, tag, count};
        combined.operand_seq = last_recv_seq_;
        trace(combined);
        // Charge the combine to the receiver's clock: one op per combined
        // element (run-skipped identity cells cost nothing).
        charge_compute(0, updates);
      }
    }
  }
  if (span.active()) span.tag("clock_delta_seconds", clock_ - clock_at_entry);
}

void Comm::reduce_chunk_arrival_order(std::span<const int> group, int me,
                                      std::span<Value> chunk,
                                      std::uint64_t tag, AggregateOp op,
                                      const ReduceOptions& options) {
  // TEST-ONLY (ReduceOptions::Fault::kArrivalOrderCombine): the binomial
  // schedule's children for this member, folded in virtual-arrival order
  // through a wildcard receive instead of the fixed step order. The
  // shipped totals are unchanged — only the fold ORDER becomes
  // timing-dependent, which is exactly the bug the happens-before auditor
  // must catch.
  const int g = static_cast<int>(group.size());
  int parent = -1;
  std::vector<bool> pending(static_cast<std::size_t>(size()), false);
  int sources = 0;
  for (int step = 1; step < g; step <<= 1) {
    if ((me & step) != 0) {
      parent = group[me - step];
      break;
    }
    if (me + step < g) {
      pending[static_cast<std::size_t>(group[me + step])] = true;
      ++sources;
    }
  }
  const auto accept = [&](int src) {
    return pending[static_cast<std::size_t>(src)];
  };
  for (; sources > 0; --sources) {
    auto [src, payload] = recv_wire_any(tag, accept);
    pending[static_cast<std::size_t>(src)] = false;
    const std::int64_t updates = combine_chunk(
        op, chunk, payload, options.combine_pool, options.combine_workers);
    TraceEvent combined{TraceEventKind::kCombine, src, tag,
                        static_cast<std::int64_t>(chunk.size())};
    combined.operand_seq = last_recv_seq_;
    trace(combined);
    charge_compute(0, updates);
  }
  if (parent >= 0) {
    send_wire(parent, tag,
              static_cast<std::int64_t>(chunk.size() * sizeof(Value)),
              encode_chunk(chunk, op, options.wire));
  }
}

void Comm::reduce(std::span<const int> group, DenseArray& data,
                  std::uint64_t tag, AggregateOp op,
                  std::int64_t max_message_elements) {
  ReduceOptions options;
  options.max_message_elements = max_message_elements;
  reduce(group, data, tag, op, options);
}

void Comm::reduce_sum(std::span<const int> group, DenseArray& data,
                      std::uint64_t tag) {
  reduce(group, data, tag, AggregateOp::kSum);
}

void Comm::bcast(std::span<const int> group, std::vector<std::byte>& data,
                 std::uint64_t tag) {
  const int g = static_cast<int>(group.size());
  CUBIST_CHECK(g >= 1, "empty broadcast group");
  const int me = index_in_group(group, rank_);
  CUBIST_CHECK(me >= 0, "rank " << rank_ << " not in broadcast group");

  // Binomial tree from group[0], rounds with doubling step: in round
  // `step`, every member me < step forwards to me + step. A member's
  // receive round (step = most significant bit of me) precedes all of its
  // send rounds, so receive first, then forward with increasing steps.
  int msb = 0;
  for (int step = 1; step <= me; step <<= 1) {
    msb = step;
  }
  if (me != 0) {
    data = recv_bytes(group[me - msb], tag);
  }
  for (int step = (me == 0) ? 1 : (msb << 1); step < g; step <<= 1) {
    if (me + step < g) {
      send_bytes(group[me + step], tag, data);
    }
  }
}

std::vector<std::vector<std::byte>> Comm::gather_bytes(
    int root, std::uint64_t tag, std::span<const std::byte> payload) {
  if (rank_ != root) {
    send_bytes(root, tag, payload);
    return {};
  }
  std::vector<std::vector<std::byte>> gathered(
      static_cast<std::size_t>(size()));
  gathered[static_cast<std::size_t>(root)].assign(payload.begin(),
                                                  payload.end());
  // Consume in virtual arrival order rather than rank order: with fixed
  // rank order a slow rank 1 head-of-line-blocks the root while later
  // ranks' messages sit queued; match-any lets the root overlap its
  // per-payload processing with the stragglers' transfers. Sources we
  // have already heard from are excluded so a fast rank's next same-tag
  // message can never be consumed by this gather.
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  seen[static_cast<std::size_t>(root)] = true;
  const auto pending = [&](int src) {
    return !seen[static_cast<std::size_t>(src)];
  };
  for (int remaining = size() - 1; remaining > 0; --remaining) {
    auto [src, bytes] = recv_wire_any(tag, pending);
    seen[static_cast<std::size_t>(src)] = true;
    gathered[static_cast<std::size_t>(src)] = std::move(bytes);
  }
  return gathered;
}

void Comm::barrier() {
  clock_ = state_.barrier(clock_);
  trace({TraceEventKind::kBarrier, -1, 0, 0});
}

}  // namespace cubist
