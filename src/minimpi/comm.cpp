#include "minimpi/comm.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "minimpi/runtime_state.h"

namespace cubist {

Comm::Comm(RuntimeState& state, int rank) : state_(state), rank_(rank) {}

int Comm::size() const { return state_.size(); }

const CostModel& Comm::model() const { return state_.model(); }

void Comm::charge_compute(std::int64_t cells_scanned, std::int64_t updates) {
  clock_ += state_.model().seconds_for_scan(static_cast<double>(cells_scanned));
  clock_ += state_.model().seconds_for_updates(static_cast<double>(updates));
}

void Comm::send_bytes(int dst, std::uint64_t tag,
                      std::span<const std::byte> data) {
  CUBIST_CHECK(dst >= 0 && dst < size(), "bad destination rank " << dst);
  CUBIST_CHECK(dst != rank_, "self-send is not supported");
  const auto bytes = static_cast<std::int64_t>(data.size());
  // Sender is occupied for the per-message overhead plus the injection;
  // the receiver may consume the message one wire latency later.
  clock_ += state_.model().overhead +
            state_.model().transfer_seconds(static_cast<double>(bytes));
  Message message;
  message.payload.assign(data.begin(), data.end());
  message.arrival_time = clock_ + state_.model().latency;
  state_.ledger().record(tag, bytes);
  state_.mailbox(dst).deliver(rank_, tag, std::move(message));
}

std::vector<std::byte> Comm::recv_bytes(int src, std::uint64_t tag) {
  CUBIST_CHECK(src >= 0 && src < size(), "bad source rank " << src);
  CUBIST_CHECK(src != rank_, "self-receive is not supported");
  Message message = state_.mailbox(rank_).receive(src, tag);
  clock_ = std::max(clock_, message.arrival_time);
  return std::move(message.payload);
}

void Comm::send_values(int dst, std::uint64_t tag,
                       std::span<const Value> data) {
  send_bytes(dst, tag, std::as_bytes(data));
}

std::vector<Value> Comm::recv_values(int src, std::uint64_t tag) {
  const std::vector<std::byte> raw = recv_bytes(src, tag);
  CUBIST_ASSERT(raw.size() % sizeof(Value) == 0, "payload not Value-aligned");
  std::vector<Value> values(raw.size() / sizeof(Value));
  std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

void Comm::reduce(std::span<const int> group, DenseArray& data,
                  std::uint64_t tag, AggregateOp op,
                  std::int64_t max_message_elements) {
  const int g = static_cast<int>(group.size());
  CUBIST_CHECK(g >= 1, "empty reduction group");
  CUBIST_CHECK(max_message_elements >= 0, "negative message cap");
  int me = -1;
  for (int i = 0; i < g; ++i) {
    if (group[i] == rank_) me = i;
  }
  CUBIST_CHECK(me >= 0, "rank " << rank_ << " not in reduction group");

  const std::int64_t total = data.size();
  const std::int64_t piece =
      max_message_elements == 0 ? total : max_message_elements;

  // Binomial tree toward group[0]: in round `step`, members with the bit
  // set ship their partial to the member `step` below and drop out.
  for (int step = 1; step < g; step <<= 1) {
    if ((me & step) != 0) {
      for (std::int64_t offset = 0; offset < total; offset += piece) {
        const auto count = static_cast<std::size_t>(
            std::min(piece, total - offset));
        send_values(group[me - step], tag,
                    std::span<const Value>(data.data() + offset, count));
      }
      return;
    }
    if (me + step < g) {
      Value* dst = data.data();
      for (std::int64_t offset = 0; offset < total; offset += piece) {
        const std::vector<Value> partial =
            recv_values(group[me + step], tag);
        CUBIST_ASSERT(static_cast<std::int64_t>(partial.size()) ==
                          std::min(piece, total - offset),
                      "reduction payload size mismatch");
        // Charge the combine to the receiver's clock: one op per element.
        charge_compute(0, static_cast<std::int64_t>(partial.size()));
        for (std::size_t i = 0; i < partial.size(); ++i) {
          combine(op, dst[offset + static_cast<std::int64_t>(i)], partial[i]);
        }
      }
    }
  }
}

void Comm::reduce_sum(std::span<const int> group, DenseArray& data,
                      std::uint64_t tag) {
  reduce(group, data, tag, AggregateOp::kSum);
}

void Comm::bcast(std::span<const int> group, std::vector<std::byte>& data,
                 std::uint64_t tag) {
  const int g = static_cast<int>(group.size());
  CUBIST_CHECK(g >= 1, "empty broadcast group");
  int me = -1;
  for (int i = 0; i < g; ++i) {
    if (group[i] == rank_) me = i;
  }
  CUBIST_CHECK(me >= 0, "rank " << rank_ << " not in broadcast group");

  // Binomial tree from group[0], rounds with doubling step: in round
  // `step`, every member me < step forwards to me + step. A member's
  // receive round (step = most significant bit of me) precedes all of its
  // send rounds, so receive first, then forward with increasing steps.
  int msb = 0;
  for (int step = 1; step <= me; step <<= 1) {
    msb = step;
  }
  if (me != 0) {
    data = recv_bytes(group[me - msb], tag);
  }
  for (int step = (me == 0) ? 1 : (msb << 1); step < g; step <<= 1) {
    if (me + step < g) {
      send_bytes(group[me + step], tag, data);
    }
  }
}

std::vector<std::vector<std::byte>> Comm::gather_bytes(
    int root, std::uint64_t tag, std::span<const std::byte> payload) {
  if (rank_ != root) {
    send_bytes(root, tag, payload);
    return {};
  }
  std::vector<std::vector<std::byte>> gathered(
      static_cast<std::size_t>(size()));
  gathered[static_cast<std::size_t>(root)].assign(payload.begin(),
                                                  payload.end());
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    gathered[static_cast<std::size_t>(src)] = recv_bytes(src, tag);
  }
  return gathered;
}

void Comm::barrier() { clock_ = state_.barrier(clock_); }

}  // namespace cubist
