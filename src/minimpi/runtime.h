// Runtime: spawns p SPMD ranks as threads and runs them to completion.
//
// This is the reproduction's stand-in for `mpirun -np p` on the paper's
// cluster (see DESIGN.md §2). Ranks share nothing except the counted
// message channels; an exception in any rank aborts the whole run (all
// blocked receivers wake with AbortedError) and is rethrown to the caller.
#pragma once

#include <functional>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/cost_model.h"
#include "minimpi/event_trace.h"
#include "minimpi/ledger.h"
#include "minimpi/transport.h"

namespace cubist {

/// Outcome of one SPMD run.
struct RunReport {
  /// Exact communication accounting (bytes/messages, per tag).
  VolumeReport volume;
  /// Simulated parallel execution time: max over ranks of the final
  /// virtual clock.
  double makespan_seconds = 0.0;
  /// Final virtual clock per rank.
  std::vector<double> rank_seconds;
  /// Real wall-clock time of the run (1-core host: roughly the total work
  /// of all ranks serialized).
  double wall_seconds = 0.0;
  /// Per-rank communication event record (empty unless the run was
  /// started with record_trace) — the happens-before auditor's input.
  EventTrace trace;
};

class Runtime {
 public:
  /// Runs `fn(comm)` on `num_ranks` ranks and reports. Rethrows the first
  /// rank exception after shutting down the others. With `record_trace`,
  /// every rank's sends/receives/combines/barriers are recorded into
  /// RunReport::trace for offline happens-before auditing.
  static RunReport run(int num_ranks, const CostModel& model,
                       const std::function<void(Comm&)>& fn,
                       bool record_trace = false);

  /// run() over an injected transport adaptor (null factory = the default
  /// in-process mailbox transport). The factory is called once per run.
  static RunReport run(int num_ranks, const CostModel& model,
                       const std::function<void(Comm&)>& fn,
                       bool record_trace,
                       const TransportFactory& make_transport);
};

}  // namespace cubist
