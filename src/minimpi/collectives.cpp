#include "minimpi/collectives.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "common/error.h"

namespace cubist {
namespace {

/// Wire bytes per element (sizeof the runtime's Value type; kept as a
/// local constant so minimpi does not depend on the array layer).
constexpr double kBytesPerElement = 8.0;

/// Switch away from binomial only on a predicted win of at least this
/// factor — the tuner's guard against model error making kAuto slower
/// than the incumbent.
constexpr double kSwitchMargin = 0.95;

/// With no explicit message cap, the ring splits the block into about
/// this many pieces per chain hop span so fill latency amortizes.
constexpr std::int64_t kRingPipelineFactor = 2;

/// Binomial-tree steps for the member at `pos` of the sub-group listed
/// by `member_indices` (indices into `group`), appended to `out` in
/// execution order: receives in ascending step order, then — for
/// non-root members — one send. Reproduces Comm::reduce's historical
/// loop exactly.
void append_binomial(std::span<const int> member_indices, int pos,
                     std::span<const int> group,
                     std::vector<ReduceStep>& out) {
  const int n = static_cast<int>(member_indices.size());
  for (int step = 1; step < n; step <<= 1) {
    if ((pos & step) != 0) {
      out.push_back({ReduceStep::Kind::kSend,
                     group[member_indices[pos - step]]});
      return;
    }
    if (pos + step < n) {
      out.push_back({ReduceStep::Kind::kRecvCombine,
                     group[member_indices[pos + step]]});
    }
  }
}

std::vector<ReduceStep> two_level_steps(std::span<const int> group,
                                        int me_index,
                                        const Topology& topology) {
  const int g = static_cast<int>(group.size());
  // Order-preserving partition of group indices by machine node. On a
  // flat topology every member lands in one node and the schedule below
  // degenerates to plain binomial.
  std::vector<int> node_ids;
  std::vector<std::vector<int>> node_members;
  int my_slot = -1;
  int my_pos = -1;
  for (int i = 0; i < g; ++i) {
    const int node = topology.node_of(group[i]);
    int slot = -1;
    for (std::size_t k = 0; k < node_ids.size(); ++k) {
      if (node_ids[k] == node) slot = static_cast<int>(k);
    }
    if (slot < 0) {
      slot = static_cast<int>(node_ids.size());
      node_ids.push_back(node);
      node_members.emplace_back();
    }
    if (i == me_index) {
      my_slot = slot;
      my_pos = static_cast<int>(node_members[static_cast<std::size_t>(slot)]
                                    .size());
    }
    node_members[static_cast<std::size_t>(slot)].push_back(i);
  }
  CUBIST_ASSERT(my_slot >= 0, "member not placed on a node");

  std::vector<ReduceStep> out;
  // Phase 1: binomial among this node's members onto the node leader
  // (its first member in group order). Non-leaders end with their send
  // and are done.
  append_binomial(node_members[static_cast<std::size_t>(my_slot)], my_pos,
                  group, out);
  if (my_pos != 0) return out;
  // Phase 2: binomial among the node leaders onto group[0] (the leader
  // of the first node, because group index 0 is first in its node).
  std::vector<int> leaders;
  leaders.reserve(node_members.size());
  for (const std::vector<int>& members : node_members) {
    leaders.push_back(members.front());
  }
  append_binomial(leaders, my_slot, group, out);
  return out;
}

}  // namespace

const char* to_string(ReduceAlgorithm algorithm) {
  switch (algorithm) {
    case ReduceAlgorithm::kAuto: return "auto";
    case ReduceAlgorithm::kBinomial: return "binomial";
    case ReduceAlgorithm::kRing: return "ring";
    case ReduceAlgorithm::kTwoLevel: return "two-level";
  }
  return "?";
}

bool parse_reduce_algorithm(std::string_view name, ReduceAlgorithm* out) {
  CUBIST_CHECK(out != nullptr, "null output");
  if (name == "auto") *out = ReduceAlgorithm::kAuto;
  else if (name == "binomial") *out = ReduceAlgorithm::kBinomial;
  else if (name == "ring") *out = ReduceAlgorithm::kRing;
  else if (name == "two-level" || name == "two_level")
    *out = ReduceAlgorithm::kTwoLevel;
  else return false;
  return true;
}

std::vector<ReduceStep> reduce_chunk_steps(ReduceAlgorithm algorithm,
                                           std::span<const int> group,
                                           int me_index,
                                           const Topology& topology) {
  const int g = static_cast<int>(group.size());
  CUBIST_CHECK(g >= 1, "empty reduction group");
  CUBIST_CHECK(me_index >= 0 && me_index < g, "member index out of group");
  if (g == 1) return {};
  switch (algorithm) {
    case ReduceAlgorithm::kAuto:
      CUBIST_CHECK(false, "kAuto must be resolved before step generation");
      return {};
    case ReduceAlgorithm::kBinomial: {
      std::vector<int> all(static_cast<std::size_t>(g));
      for (int i = 0; i < g; ++i) all[static_cast<std::size_t>(i)] = i;
      std::vector<ReduceStep> out;
      append_binomial(all, me_index, group, out);
      return out;
    }
    case ReduceAlgorithm::kRing: {
      // Chain toward group[0]: the tail only sends, interior members
      // fold one operand then forward, the head only folds.
      std::vector<ReduceStep> out;
      if (me_index == g - 1) {
        out.push_back({ReduceStep::Kind::kSend, group[me_index - 1]});
      } else if (me_index > 0) {
        out.push_back({ReduceStep::Kind::kRecvCombine, group[me_index + 1]});
        out.push_back({ReduceStep::Kind::kSend, group[me_index - 1]});
      } else {
        out.push_back({ReduceStep::Kind::kRecvCombine, group[1]});
      }
      return out;
    }
    case ReduceAlgorithm::kTwoLevel:
      return two_level_steps(group, me_index, topology);
  }
  CUBIST_CHECK(false, "unknown reduce algorithm");
  return {};
}

std::int64_t reduce_chunk_elements(ReduceAlgorithm algorithm,
                                   std::int64_t total_elements,
                                   int group_size,
                                   std::int64_t max_message_elements) {
  CUBIST_CHECK(total_elements >= 0, "negative block size");
  CUBIST_CHECK(max_message_elements >= 0, "negative message cap");
  if (max_message_elements != 0) return max_message_elements;
  if (algorithm == ReduceAlgorithm::kRing && group_size > 1) {
    const std::int64_t pieces =
        kRingPipelineFactor * (static_cast<std::int64_t>(group_size) - 1);
    return std::max<std::int64_t>(1,
                                  (total_elements + pieces - 1) / pieces);
  }
  return total_elements == 0 ? 1 : total_elements;
}

double simulate_reduce_seconds(ReduceAlgorithm algorithm,
                               std::span<const int> group,
                               std::int64_t total_elements,
                               std::int64_t max_message_elements,
                               const CostModel& model, double density_hint,
                               bool encode_wire) {
  const int g = static_cast<int>(group.size());
  if (g < 2 || total_elements == 0) return 0.0;
  const std::int64_t piece = reduce_chunk_elements(
      algorithm, total_elements, g, max_message_elements);
  const double density = std::clamp(density_hint, 0.0, 1.0);
  // The adaptive codec ships narrow integers for dense chunks (~0.5x)
  // and run-skips identity cells for sparse ones; a clamped density is a
  // good monotone proxy and is applied identically to every candidate.
  const double wire_factor =
      encode_wire ? std::clamp(density, 0.05, 0.5) : 1.0;

  struct Op {
    ReduceStep step;
    std::int64_t count = 0;
  };
  std::vector<std::vector<Op>> program(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    const std::vector<ReduceStep> steps =
        reduce_chunk_steps(algorithm, group, i, model.topology);
    for (std::int64_t offset = 0; offset < total_elements; offset += piece) {
      const std::int64_t count = std::min(piece, total_elements - offset);
      for (const ReduceStep& step : steps) {
        program[static_cast<std::size_t>(i)].push_back({step, count});
      }
    }
  }

  // Deterministic replay under the runtime's charging rules: a send
  // occupies the sender for overhead + wire transfer and arrives one
  // link latency later; a receive waits for the arrival, then pays the
  // combine at update_rate. Channels are FIFO per (src, dst), exactly
  // like the transport.
  std::vector<double> clock(static_cast<std::size_t>(g), 0.0);
  std::vector<std::size_t> pc(static_cast<std::size_t>(g), 0);
  std::map<std::pair<int, int>, std::deque<double>> arrivals;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int i = 0; i < g; ++i) {
      auto& ops = program[static_cast<std::size_t>(i)];
      double& t = clock[static_cast<std::size_t>(i)];
      while (pc[static_cast<std::size_t>(i)] < ops.size()) {
        const Op& op = ops[pc[static_cast<std::size_t>(i)]];
        const LinkCost link = model.link(group[i], op.step.peer);
        if (op.step.kind == ReduceStep::Kind::kSend) {
          const double wire_bytes =
              static_cast<double>(op.count) * kBytesPerElement * wire_factor;
          t += link.overhead + link.transfer_seconds(wire_bytes);
          arrivals[{group[i], op.step.peer}].push_back(t + link.latency);
        } else {
          std::deque<double>& queue = arrivals[{op.step.peer, group[i]}];
          if (queue.empty()) break;  // blocked on an in-flight message
          t = std::max(t, queue.front());
          queue.pop_front();
          const double updates = static_cast<double>(op.count) * density;
          t += model.seconds_for_updates(updates);
        }
        ++pc[static_cast<std::size_t>(i)];
        progress = true;
      }
    }
  }
  for (int i = 0; i < g; ++i) {
    CUBIST_ASSERT(pc[static_cast<std::size_t>(i)] ==
                      program[static_cast<std::size_t>(i)].size(),
                  "reduce schedule simulation deadlocked");
  }
  return *std::max_element(clock.begin(), clock.end());
}

ReduceAlgorithm choose_reduce_algorithm(std::span<const int> group,
                                        std::int64_t total_elements,
                                        std::int64_t max_message_elements,
                                        const CostModel& model,
                                        double density_hint,
                                        bool encode_wire) {
  const int g = static_cast<int>(group.size());
  if (g < 2 || total_elements == 0) return ReduceAlgorithm::kBinomial;

  const double binomial_seconds = simulate_reduce_seconds(
      ReduceAlgorithm::kBinomial, group, total_elements,
      max_message_elements, model, density_hint, encode_wire);

  std::vector<ReduceAlgorithm> candidates;
  if (g >= 3) candidates.push_back(ReduceAlgorithm::kRing);
  if (model.topology.two_tier()) {
    bool spans_nodes = false;
    for (int rank : group) {
      if (!model.topology.same_node(rank, group.front())) {
        spans_nodes = true;
        break;
      }
    }
    if (spans_nodes) candidates.push_back(ReduceAlgorithm::kTwoLevel);
  }

  ReduceAlgorithm best = ReduceAlgorithm::kBinomial;
  double best_seconds = binomial_seconds;
  for (ReduceAlgorithm candidate : candidates) {
    const double seconds = simulate_reduce_seconds(
        candidate, group, total_elements, max_message_elements, model,
        density_hint, encode_wire);
    if (seconds < best_seconds && seconds < binomial_seconds * kSwitchMargin) {
      best = candidate;
      best_seconds = seconds;
    }
  }
  return best;
}

ReduceAlgorithm resolve_reduce_algorithm(ReduceAlgorithm requested,
                                         std::span<const int> group,
                                         std::int64_t total_elements,
                                         std::int64_t max_message_elements,
                                         const CostModel& model,
                                         double density_hint,
                                         bool encode_wire) {
  if (requested != ReduceAlgorithm::kAuto) return requested;
  return choose_reduce_algorithm(group, total_elements, max_message_elements,
                                 model, density_hint, encode_wire);
}

}  // namespace cubist
