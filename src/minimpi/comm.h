// Comm: the per-rank communication endpoint of the minimpi runtime.
//
// A deliberately MPI-shaped API (blocking matched send/recv, binomial
// collectives) so the parallel cube builder reads like the MPI program the
// paper's authors ran, while every byte is counted (VolumeLedger) and a
// LogP-style virtual clock tracks simulated parallel time (CostModel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "array/aggregate_op.h"
#include "array/dense_array.h"
#include "array/wire_codec.h"
#include "minimpi/collectives.h"
#include "minimpi/cost_model.h"
#include "minimpi/event_trace.h"

namespace cubist {

class RuntimeState;
class ThreadPool;

/// Knobs of one pipelined reduction (see docs/PERFORMANCE.md,
/// "Communication engine" and "Collective selection & topology").
struct ReduceOptions {
  /// Reduction schedule (minimpi/collectives.h). kBinomial is the
  /// compatibility default for direct Comm users; kAuto asks the cost
  /// tuner to pick per call from (block size, group, density hint,
  /// topology). The choice never changes the result bits or the shipped
  /// volume — only the schedule.
  ReduceAlgorithm algorithm = ReduceAlgorithm::kBinomial;
  /// Static non-identity-fraction hint for the kAuto tuner's wire and
  /// combine estimates. Deliberately NOT measured at runtime so the
  /// static planner resolves kAuto to the identical schedule.
  double density_hint = 1.0;
  /// Chunk size in elements (0 = whole block per message; the ring
  /// auto-chunks in that case — see reduce_chunk_elements). Smaller
  /// chunks trade more messages (latency/overhead) for finer pipelining
  /// — the communication-frequency knob studied in the authors'
  /// companion work.
  std::int64_t max_message_elements = 0;
  /// Adaptive payload encoding; wire.enabled = false ships raw Values and
  /// makes wire bytes equal logical bytes exactly.
  WirePolicy wire;
  /// Pool for the receiver's elementwise combine (null = inline). Striping
  /// is in fixed disjoint cell ranges, so the result is bit-identical for
  /// any pool and worker count.
  ThreadPool* combine_pool = nullptr;
  /// Per-call concurrency cap for the combine (0 = pool policy). The cube
  /// builder passes its per-rank budget here.
  int combine_workers = 1;

  /// TEST-ONLY fault injection for the race-detection suite: makes the
  /// runtime commit a classic distributed-reduction bug on purpose so
  /// tests can prove the happens-before auditor catches it in a recorded
  /// trace. Never set outside tests.
  enum class Fault {
    kNone,
    /// Receivers consume and fold operands in virtual-arrival order via a
    /// wildcard receive instead of the fixed binomial step order: totals
    /// stay right (the ledger audit passes) but the combine order — and
    /// with it the floating-point bits — depends on timing.
    kArrivalOrderCombine,
  };
  Fault fault = Fault::kNone;
};

class Comm {
 public:
  Comm(RuntimeState& state, int rank);

  int rank() const { return rank_; }
  int size() const;
  const CostModel& model() const;

  // --- virtual clock ---

  double clock() const { return clock_; }
  void advance_clock(double seconds) { clock_ += seconds; }
  /// Charges `updates` aggregation updates and `cells` scan decodes to the
  /// virtual clock using the run's cost model.
  void charge_compute(std::int64_t cells_scanned, std::int64_t updates);

  // --- point to point ---

  /// Blocking send. The tag identifies the logical stream (the cube
  /// builder uses the target view's dimension mask) and keys the ledger.
  void send_bytes(int dst, std::uint64_t tag, std::span<const std::byte> data);
  /// Blocking receive, matched by (src, tag), FIFO within a match.
  std::vector<std::byte> recv_bytes(int src, std::uint64_t tag);

  void send_values(int dst, std::uint64_t tag, std::span<const Value> data);
  std::vector<Value> recv_values(int src, std::uint64_t tag);

  /// Blocking receive matched by tag only; among everything queued, takes
  /// the message with the earliest virtual arrival (so a slow sender never
  /// head-of-line-blocks a fast one). Returns (source, payload).
  std::pair<int, std::vector<std::byte>> recv_bytes_any(std::uint64_t tag);

  // --- collectives (implemented over send/recv, so volume is counted) ---

  /// Chunk-pipelined reduction of `data` over `group` (a list of ranks
  /// containing this rank; group.size() need not be a power of two)
  /// under `options.algorithm` — binomial tree, pipelined ring/chain, or
  /// two-level hierarchical, all toward group[0] (minimpi/collectives.h;
  /// kAuto lets the cost tuner pick). On return, group[0] holds the
  /// elementwise combination under `op`; other members' arrays hold
  /// partials and should be considered consumed.
  ///
  /// The block is split into chunks of `options.max_message_elements` and
  /// each chunk runs the whole binomial schedule before the next chunk
  /// starts: an interior member combines and forwards chunk i up the tree
  /// before chunk i+1 arrives from below, so the virtual clock sees the
  /// rounds overlap (per-chunk arrival times, not whole-block
  /// serialization). Each chunk's payload is adaptively encoded under
  /// `options.wire`; the ledger records logical and wire bytes per
  /// message, and the clock charges the transfer at wire size.
  ///
  /// Determinism: every receive is fixed-source, so per destination cell
  /// the combine order is the chosen schedule's step order, identical
  /// for every chunk size, encoding choice, and combine pool — the
  /// output bits never depend on the knobs.
  ///
  /// Zero-size blocks return immediately without touching the wire.
  void reduce(std::span<const int> group, DenseArray& data, std::uint64_t tag,
              AggregateOp op, const ReduceOptions& options);

  /// reduce() with default options but an explicit chunk cap.
  void reduce(std::span<const int> group, DenseArray& data, std::uint64_t tag,
              AggregateOp op, std::int64_t max_message_elements = 0);

  /// reduce() specialized to SUM, whole-block messages.
  void reduce_sum(std::span<const int> group, DenseArray& data,
                  std::uint64_t tag);

  /// Binomial broadcast of `data` from group[0] to all of `group`.
  void bcast(std::span<const int> group, std::vector<std::byte>& data,
             std::uint64_t tag);

  /// Gathers each rank's payload at `root` (returns empty elsewhere).
  /// Must be called by every rank in the runtime.
  std::vector<std::vector<std::byte>> gather_bytes(
      int root, std::uint64_t tag, std::span<const std::byte> payload);

  /// Global barrier; also synchronizes virtual clocks to the max plus a
  /// log2(p) latency term.
  void barrier();

  // --- wire telemetry (this rank's sends only) ---

  /// Dense-equivalent bytes this rank has sent.
  std::int64_t logical_bytes_sent() const { return logical_bytes_sent_; }
  /// Bytes this rank actually put on the link (<= logical; == when the
  /// wire codec is disabled).
  std::int64_t wire_bytes_sent() const { return wire_bytes_sent_; }

 private:
  /// The one send primitive: ships `payload`, charges the clock at wire
  /// size, and records `logical_bytes` next to it in the ledger.
  void send_wire(int dst, std::uint64_t tag, std::int64_t logical_bytes,
                 std::vector<std::byte> payload);
  /// The one wildcard-receive primitive: earliest-arrival match under
  /// `tag` among sources `accept` admits (null = all), clock-synced and
  /// event-trace-recorded. Every match-any consumer (recv_bytes_any,
  /// gather_bytes, the fault-injected reduce) goes through here so the
  /// happens-before auditor sees every arrival-order-dependent match.
  std::pair<int, std::vector<std::byte>> recv_wire_any(
      std::uint64_t tag, const std::function<bool(int)>& accept);
  /// One chunk of reduce() under Fault::kArrivalOrderCombine (test-only):
  /// same children, same parent, but operands folded in arrival order.
  void reduce_chunk_arrival_order(std::span<const int> group, int me,
                                  std::span<Value> chunk, std::uint64_t tag,
                                  AggregateOp op,
                                  const ReduceOptions& options);
  /// The single event-record choke point. When HB tracing is on, appends
  /// to this rank's EventTrace; when the obs tracer is on, mirrors the
  /// event as a tagged "comm" instant on this rank's timeline — one
  /// capture feeds both the happens-before auditor (via
  /// analysis/trace_bridge.h) and the Perfetto view. Returns the event's
  /// per-rank sequence number (kNoTraceSeq when neither sink is active).
  std::uint64_t trace(const TraceEvent& event);

  RuntimeState& state_;
  int rank_;
  double clock_ = 0.0;
  std::int64_t logical_bytes_sent_ = 0;
  std::int64_t wire_bytes_sent_ = 0;
  /// Per-rank event sequence, advanced by trace() whichever sink is on;
  /// equals the EventTrace index whenever HB tracing is enabled.
  std::uint64_t trace_seq_ = 0;
  /// Trace index of this rank's most recent receive — the operand
  /// provenance recorded by reduce()'s combine events.
  std::uint64_t last_recv_seq_ = kNoTraceSeq;
};

}  // namespace cubist
