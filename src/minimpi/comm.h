// Comm: the per-rank communication endpoint of the minimpi runtime.
//
// A deliberately MPI-shaped API (blocking matched send/recv, binomial
// collectives) so the parallel cube builder reads like the MPI program the
// paper's authors ran, while every byte is counted (VolumeLedger) and a
// LogP-style virtual clock tracks simulated parallel time (CostModel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "array/aggregate_op.h"
#include "array/dense_array.h"
#include "minimpi/cost_model.h"

namespace cubist {

class RuntimeState;

class Comm {
 public:
  Comm(RuntimeState& state, int rank);

  int rank() const { return rank_; }
  int size() const;
  const CostModel& model() const;

  // --- virtual clock ---

  double clock() const { return clock_; }
  void advance_clock(double seconds) { clock_ += seconds; }
  /// Charges `updates` aggregation updates and `cells` scan decodes to the
  /// virtual clock using the run's cost model.
  void charge_compute(std::int64_t cells_scanned, std::int64_t updates);

  // --- point to point ---

  /// Blocking send. The tag identifies the logical stream (the cube
  /// builder uses the target view's dimension mask) and keys the ledger.
  void send_bytes(int dst, std::uint64_t tag, std::span<const std::byte> data);
  /// Blocking receive, matched by (src, tag), FIFO within a match.
  std::vector<std::byte> recv_bytes(int src, std::uint64_t tag);

  void send_values(int dst, std::uint64_t tag, std::span<const Value> data);
  std::vector<Value> recv_values(int src, std::uint64_t tag);

  // --- collectives (implemented over send/recv, so volume is counted) ---

  /// Binomial-tree reduction of `data` over `group` (a list of ranks
  /// containing this rank; group.size() need not be a power of two).
  /// On return, group[0] holds the elementwise combination under `op`;
  /// other members' arrays hold partials and should be considered
  /// consumed. `max_message_elements` caps each message's payload (0 =
  /// whole block per message): smaller caps trade more messages (latency)
  /// for finer pipelining — the communication-frequency knob studied in
  /// the authors' companion work.
  void reduce(std::span<const int> group, DenseArray& data, std::uint64_t tag,
              AggregateOp op, std::int64_t max_message_elements = 0);

  /// reduce() specialized to SUM, whole-block messages.
  void reduce_sum(std::span<const int> group, DenseArray& data,
                  std::uint64_t tag);

  /// Binomial broadcast of `data` from group[0] to all of `group`.
  void bcast(std::span<const int> group, std::vector<std::byte>& data,
             std::uint64_t tag);

  /// Gathers each rank's payload at `root` (returns empty elsewhere).
  /// Must be called by every rank in the runtime.
  std::vector<std::vector<std::byte>> gather_bytes(
      int root, std::uint64_t tag, std::span<const std::byte> payload);

  /// Global barrier; also synchronizes virtual clocks to the max plus a
  /// log2(p) latency term.
  void barrier();

 private:
  RuntimeState& state_;
  int rank_;
  double clock_ = 0.0;
};

}  // namespace cubist
