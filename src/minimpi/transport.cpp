#include "minimpi/transport.h"

#include "common/error.h"
#include "minimpi/mailbox.h"

namespace cubist {
namespace {

/// The original in-process transport: one Mailbox per rank. This file is
/// the ONLY code outside mailbox.h allowed to name Mailbox or call its
/// queue methods (tools/lint.py enforces the boundary).
class MailboxTransport final : public Transport {
 public:
  explicit MailboxTransport(int num_ranks) {
    mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      mailboxes_.push_back(std::make_unique<Mailbox>());
    }
  }

  const char* name() const override { return "mailbox"; }

  void deliver(int dst, int src, std::uint64_t tag,
               Message message) override {
    box(dst).deliver(src, tag, std::move(message));
  }

  Message receive(int rank, int src, std::uint64_t tag) override {
    return box(rank).receive(src, tag);
  }

  std::pair<int, Message> receive_any(
      int rank, std::uint64_t tag,
      const std::function<bool(int)>& accept_source) override {
    return box(rank).receive_any(tag, accept_source);
  }

  void abort() override {
    for (auto& mailbox : mailboxes_) {
      mailbox->abort();
    }
  }

 private:
  Mailbox& box(int rank) {
    CUBIST_CHECK(rank >= 0 &&
                     rank < static_cast<int>(mailboxes_.size()),
                 "rank " << rank << " out of transport range");
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace

std::unique_ptr<Transport> make_mailbox_transport(int num_ranks) {
  CUBIST_CHECK(num_ranks >= 1, "need at least one rank");
  return std::make_unique<MailboxTransport>(num_ranks);
}

}  // namespace cubist
