// VolumeLedger: exact accounting of every byte moved between ranks.
//
// The paper's central experimental quantity is interprocessor communication
// volume (Lemma 1, Theorem 3). Rather than modelling it, the runtime counts
// it: every send records (bytes, message) under the sender-supplied tag.
// The cube builder tags each reduction with the view's dimension mask, so
// the ledger decomposes measured volume per lattice node — exactly what the
// Lemma-1 validation bench compares against the closed form.
//
// Two byte counts per send since the adaptive wire codec landed:
// LOGICAL bytes are the dense payload size (elements * sizeof(Value)) —
// the quantity the paper's closed forms bound, and what `total_bytes` /
// `bytes_by_tag` have always meant. WIRE bytes are what the encoded
// payload actually occupies on the link; the codec guarantees
// wire <= logical per message, so `total_wire_bytes <= total_bytes` holds
// unconditionally (with equality when encoding is disabled). The analysis
// gate certifies both against the Lemma-1 bound (docs/ANALYSIS.md).
// Since the observability layer landed, the ledger is also the comm
// subsystem's feed into the metrics registry: every record() mirrors
// into the process-wide `cubist_comm_*` counters (cumulative across
// runs, the Prometheus view) while the per-instance tag maps stay the
// per-run source of truth — snapshot() DERIVES the totals from the maps
// rather than keeping parallel accumulators, so the two exports can
// never disagree with the breakdown (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace cubist {

/// Communication totals, optionally broken down by tag.
struct VolumeReport {
  /// Logical (dense-equivalent) bytes — the paper's volume measure.
  std::int64_t total_bytes = 0;
  /// Bytes actually shipped after wire encoding (== total_bytes when the
  /// codec is disabled).
  std::int64_t total_wire_bytes = 0;
  std::int64_t total_messages = 0;
  /// Logical bytes per tag (tag = view mask in the cube builder).
  std::map<std::uint64_t, std::int64_t> bytes_by_tag;
  /// Wire bytes per tag.
  std::map<std::uint64_t, std::int64_t> wire_bytes_by_tag;
};

class VolumeLedger {
 public:
  /// Records one message of `bytes` logical bytes that occupied
  /// `wire_bytes` on the link. The two-argument form is for unencoded
  /// sends, where the payload goes out verbatim.
  void record(std::uint64_t tag, std::int64_t bytes) {
    record(tag, bytes, bytes);
  }
  void record(std::uint64_t tag, std::int64_t bytes, std::int64_t wire_bytes) {
    {
      std::lock_guard lock(mutex_);
      messages_ += 1;
      bytes_by_tag_[tag] += bytes;
      wire_bytes_by_tag_[tag] += wire_bytes;
    }
    logical_counter().add(bytes);
    wire_counter().add(wire_bytes);
    message_counter().increment();
  }

  VolumeReport snapshot() const {
    std::lock_guard lock(mutex_);
    VolumeReport report;
    report.total_messages = messages_;
    report.bytes_by_tag = bytes_by_tag_;
    report.wire_bytes_by_tag = wire_bytes_by_tag_;
    for (const auto& [tag, bytes] : bytes_by_tag_) {
      (void)tag;
      report.total_bytes += bytes;
    }
    for (const auto& [tag, bytes] : wire_bytes_by_tag_) {
      (void)tag;
      report.total_wire_bytes += bytes;
    }
    return report;
  }

 private:
  // Process-wide export instruments (cumulative across every runtime in
  // the process, as Prometheus counters are meant to be). Function-local
  // statics so the registry lookup happens once, not per message.
  static obs::Counter& logical_counter() {
    static obs::Counter& counter = obs::Registry::global().counter(
        "cubist_comm_logical_bytes",
        "dense-equivalent bytes sent between ranks");
    return counter;
  }
  static obs::Counter& wire_counter() {
    static obs::Counter& counter = obs::Registry::global().counter(
        "cubist_comm_wire_bytes", "encoded bytes actually put on the link");
    return counter;
  }
  static obs::Counter& message_counter() {
    static obs::Counter& counter = obs::Registry::global().counter(
        "cubist_comm_messages", "messages sent between ranks");
    return counter;
  }

  mutable std::mutex mutex_;
  std::int64_t messages_ = 0;
  std::map<std::uint64_t, std::int64_t> bytes_by_tag_;
  std::map<std::uint64_t, std::int64_t> wire_bytes_by_tag_;
};

}  // namespace cubist
