// VolumeLedger: exact accounting of every byte moved between ranks.
//
// The paper's central experimental quantity is interprocessor communication
// volume (Lemma 1, Theorem 3). Rather than modelling it, the runtime counts
// it: every send records (bytes, message) under the sender-supplied tag.
// The cube builder tags each reduction with the view's dimension mask, so
// the ledger decomposes measured volume per lattice node — exactly what the
// Lemma-1 validation bench compares against the closed form.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace cubist {

/// Communication totals, optionally broken down by tag.
struct VolumeReport {
  std::int64_t total_bytes = 0;
  std::int64_t total_messages = 0;
  /// Bytes per tag (tag = view mask in the cube builder).
  std::map<std::uint64_t, std::int64_t> bytes_by_tag;
};

class VolumeLedger {
 public:
  void record(std::uint64_t tag, std::int64_t bytes) {
    std::lock_guard lock(mutex_);
    report_.total_bytes += bytes;
    report_.total_messages += 1;
    report_.bytes_by_tag[tag] += bytes;
  }

  VolumeReport snapshot() const {
    std::lock_guard lock(mutex_);
    return report_;
  }

 private:
  mutable std::mutex mutex_;
  VolumeReport report_;
};

}  // namespace cubist
