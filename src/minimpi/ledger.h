// VolumeLedger: exact accounting of every byte moved between ranks.
//
// The paper's central experimental quantity is interprocessor communication
// volume (Lemma 1, Theorem 3). Rather than modelling it, the runtime counts
// it: every send records (bytes, message) under the sender-supplied tag.
// The cube builder tags each reduction with the view's dimension mask, so
// the ledger decomposes measured volume per lattice node — exactly what the
// Lemma-1 validation bench compares against the closed form.
//
// Two byte counts per send since the adaptive wire codec landed:
// LOGICAL bytes are the dense payload size (elements * sizeof(Value)) —
// the quantity the paper's closed forms bound, and what `total_bytes` /
// `bytes_by_tag` have always meant. WIRE bytes are what the encoded
// payload actually occupies on the link; the codec guarantees
// wire <= logical per message, so `total_wire_bytes <= total_bytes` holds
// unconditionally (with equality when encoding is disabled). The analysis
// gate certifies both against the Lemma-1 bound (docs/ANALYSIS.md).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace cubist {

/// Communication totals, optionally broken down by tag.
struct VolumeReport {
  /// Logical (dense-equivalent) bytes — the paper's volume measure.
  std::int64_t total_bytes = 0;
  /// Bytes actually shipped after wire encoding (== total_bytes when the
  /// codec is disabled).
  std::int64_t total_wire_bytes = 0;
  std::int64_t total_messages = 0;
  /// Logical bytes per tag (tag = view mask in the cube builder).
  std::map<std::uint64_t, std::int64_t> bytes_by_tag;
  /// Wire bytes per tag.
  std::map<std::uint64_t, std::int64_t> wire_bytes_by_tag;
};

class VolumeLedger {
 public:
  /// Records one message of `bytes` logical bytes that occupied
  /// `wire_bytes` on the link. The two-argument form is for unencoded
  /// sends, where the payload goes out verbatim.
  void record(std::uint64_t tag, std::int64_t bytes) {
    record(tag, bytes, bytes);
  }
  void record(std::uint64_t tag, std::int64_t bytes, std::int64_t wire_bytes) {
    std::lock_guard lock(mutex_);
    report_.total_bytes += bytes;
    report_.total_wire_bytes += wire_bytes;
    report_.total_messages += 1;
    report_.bytes_by_tag[tag] += bytes;
    report_.wire_bytes_by_tag[tag] += wire_bytes;
  }

  VolumeReport snapshot() const {
    std::lock_guard lock(mutex_);
    return report_;
  }

 private:
  mutable std::mutex mutex_;
  VolumeReport report_;
};

}  // namespace cubist
