#include "minimpi/proc_grid.h"

#include <sstream>

#include "common/error.h"
#include "common/mathutil.h"

namespace cubist {

ProcGrid::ProcGrid(std::vector<int> log_splits, Topology topology)
    : log_splits_(std::move(log_splits)), topology_(topology) {
  CUBIST_CHECK(!log_splits_.empty(), "empty grid");
  CUBIST_CHECK(topology_.ranks_per_node >= 0,
               "negative ranks_per_node " << topology_.ranks_per_node);
  for (int k : log_splits_) {
    CUBIST_CHECK(k >= 0 && k < 30, "bad split exponent " << k);
    log_size_ += k;
  }
  CUBIST_CHECK(log_size_ < 30, "grid too large");
  size_ = 1 << log_size_;
  strides_.assign(log_splits_.size(), 1);
  std::int64_t stride = 1;
  for (int d = ndims() - 1; d >= 0; --d) {
    strides_[d] = stride;
    stride *= splits(d);
  }
}

std::vector<std::int64_t> ProcGrid::splits_vector() const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(ndims()));
  for (int d = 0; d < ndims(); ++d) {
    out[d] = splits(d);
  }
  return out;
}

std::vector<std::int64_t> ProcGrid::coords_of(int rank) const {
  CUBIST_CHECK(rank >= 0 && rank < size_, "rank out of range");
  std::vector<std::int64_t> coords(static_cast<std::size_t>(ndims()));
  std::int64_t rest = rank;
  for (int d = 0; d < ndims(); ++d) {
    coords[d] = rest / strides_[d];
    rest -= coords[d] * strides_[d];
  }
  return coords;
}

int ProcGrid::rank_of(const std::vector<std::int64_t>& coords) const {
  CUBIST_CHECK(static_cast<int>(coords.size()) == ndims(), "rank mismatch");
  std::int64_t rank = 0;
  for (int d = 0; d < ndims(); ++d) {
    CUBIST_CHECK(coords[d] >= 0 && coords[d] < splits(d),
                 "coordinate out of range in dim " << d);
    rank += coords[d] * strides_[d];
  }
  return static_cast<int>(rank);
}

std::int64_t ProcGrid::coord(int rank, int d) const {
  CUBIST_CHECK(rank >= 0 && rank < size_, "rank out of range");
  CUBIST_CHECK(d >= 0 && d < ndims(), "dimension out of range");
  return (rank / strides_[d]) % splits(d);
}

bool ProcGrid::is_lead_for(int rank, DimSet aggregated) const {
  for (int d : aggregated.dims()) {
    if (!is_lead(rank, d)) return false;
  }
  return true;
}

std::vector<int> ProcGrid::axis_group(int rank, int d) const {
  std::vector<std::int64_t> coords = coords_of(rank);
  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(splits(d)));
  for (std::int64_t c = 0; c < splits(d); ++c) {
    coords[d] = c;
    group.push_back(rank_of(coords));
  }
  return group;
}

BlockRange ProcGrid::block(
    int rank, const std::vector<std::int64_t>& global_extents) const {
  CUBIST_CHECK(static_cast<int>(global_extents.size()) == ndims(),
               "rank mismatch");
  return block_for(global_extents, splits_vector(), coords_of(rank));
}

int ProcGrid::node_of(int rank) const {
  CUBIST_CHECK(rank >= 0 && rank < size_, "rank out of range");
  return topology_.node_of(rank);
}

int ProcGrid::num_nodes() const {
  if (!topology_.two_tier()) return 1;
  return static_cast<int>(
      (size_ + topology_.ranks_per_node - 1) / topology_.ranks_per_node);
}

std::string ProcGrid::to_string() const {
  std::ostringstream out;
  for (int d = 0; d < ndims(); ++d) {
    if (d) out << 'x';
    out << splits(d);
  }
  return out.str();
}

}  // namespace cubist
