// ProcGrid: the paper's processor grid (§4).
//
// With p = 2^k processors, dimension i is partitioned 2^{k_i} ways
// (sum k_i = k). A processor's label is its coordinate vector; the *lead*
// processors along dimension i are those with coordinate 0 — when the
// algorithm aggregates along dimension i, results land on them, and only
// they participate in the rest of that subtree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "array/block.h"
#include "common/dimset.h"
#include "minimpi/topology.h"

namespace cubist {

class ProcGrid {
 public:
  /// `log_splits[d]` = k_d, so dimension d is split 2^{k_d} ways.
  /// `topology` maps the grid's ranks onto machine nodes (flat by
  /// default); collectives and the cost model price each edge by it.
  explicit ProcGrid(std::vector<int> log_splits, Topology topology = {});

  int ndims() const { return static_cast<int>(log_splits_.size()); }
  /// Total processors p = 2^k.
  int size() const { return size_; }
  /// k = sum of the per-dimension exponents.
  int log_size() const { return log_size_; }
  const std::vector<int>& log_splits() const { return log_splits_; }
  /// Number of pieces along dimension d (2^{k_d}).
  std::int64_t splits(int d) const {
    return std::int64_t{1} << log_splits_[d];
  }
  std::vector<std::int64_t> splits_vector() const;

  /// Grid coordinates of a rank (row-major layout over the splits).
  std::vector<std::int64_t> coords_of(int rank) const;
  int rank_of(const std::vector<std::int64_t>& coords) const;

  /// Coordinate of `rank` along dimension d.
  std::int64_t coord(int rank, int d) const;

  /// True iff `rank` has coordinate 0 along dimension d (paper: a lead
  /// processor along d, the home of results aggregated along d).
  bool is_lead(int rank, int d) const { return coord(rank, d) == 0; }

  /// True iff `rank` is a lead along every dimension in `aggregated`,
  /// i.e. it holds the final values of a view lacking those dimensions.
  bool is_lead_for(int rank, DimSet aggregated) const;

  /// The 2^{k_d} ranks sharing all coordinates with `rank` except along
  /// dimension d, ordered by their coordinate along d (so element 0 is the
  /// lead). This is the reduction group for aggregating along d.
  std::vector<int> axis_group(int rank, int d) const;

  /// The block of the global array owned by `rank` (balanced split).
  BlockRange block(int rank,
                   const std::vector<std::int64_t>& global_extents) const;

  /// "2x2x2x1" rendering of the split counts.
  std::string to_string() const;

  // --- two-tier machine topology ---

  const Topology& topology() const { return topology_; }
  /// Machine node owning `rank` (0 for every rank when flat).
  int node_of(int rank) const;
  /// Number of machine nodes the grid's ranks occupy (1 when flat).
  int num_nodes() const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

 private:
  std::vector<int> log_splits_;
  int size_ = 1;
  int log_size_ = 0;
  /// Row-major strides over the coordinate space.
  std::vector<std::int64_t> strides_;
  Topology topology_;
};

}  // namespace cubist
