// Two-tier machine topology for the virtual-clock cost model.
//
// The paper's cluster is flat — every pair of processors talks over the
// same Myrinet link — but the systems this reproduction grows toward
// (multi-node clusters, datacenter pods) are not: ranks within a "node"
// share a cheap link (shared memory, intra-rack), ranks on different
// nodes pay an expensive one. A Topology maps ranks to nodes by fixed
// blocks and gives every edge its own LinkCost, so the collective tuner
// (minimpi/collectives.h) and the LogP virtual clock can price a message
// by the link it actually crosses.
#pragma once

namespace cubist {

/// LogP parameters of one link class: per-message latency (overlappable),
/// per-message CPU overhead (not overlappable) and bandwidth.
struct LinkCost {
  double latency = 20e-6;
  double overhead = 0.0;
  double bandwidth = 100e6;

  double transfer_seconds(double bytes) const { return bytes / bandwidth; }

  bool operator==(const LinkCost&) const = default;
};

/// Rank-to-node mapping plus the inter-node link class. Flat by default
/// (ranks_per_node == 0): every rank shares one node and every edge uses
/// the CostModel's intra-node parameters, which reproduces the paper's
/// single-switch cluster exactly.
struct Topology {
  /// Consecutive ranks per node (blocked placement, the MPI default).
  /// 0 = flat topology; the last node may be smaller when the rank count
  /// is not a multiple.
  int ranks_per_node = 0;
  /// Link cost charged on edges that cross a node boundary. Ignored when
  /// flat.
  LinkCost inter;

  bool two_tier() const { return ranks_per_node > 0; }

  /// Node that owns `rank` (0 for every rank when flat).
  int node_of(int rank) const {
    return two_tier() ? rank / ranks_per_node : 0;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  bool operator==(const Topology&) const = default;
};

}  // namespace cubist
