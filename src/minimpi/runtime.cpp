#include "minimpi/runtime.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "minimpi/runtime_state.h"
#include "obs/trace.h"

namespace cubist {

RunReport Runtime::run(int num_ranks, const CostModel& model,
                       const std::function<void(Comm&)>& fn,
                       bool record_trace) {
  return run(num_ranks, model, fn, record_trace, nullptr);
}

RunReport Runtime::run(int num_ranks, const CostModel& model,
                       const std::function<void(Comm&)>& fn,
                       bool record_trace,
                       const TransportFactory& make_transport) {
  CUBIST_CHECK(num_ranks >= 1, "need at least one rank");
  CUBIST_CHECK(fn != nullptr, "null rank function");

  RuntimeState state(num_ranks, model, record_trace,
                     make_transport ? make_transport(num_ranks) : nullptr);
  std::vector<double> rank_seconds(static_cast<std::size_t>(num_ranks), 0.0);

  // The SPMD rank threads all share the process-wide ThreadPool for their
  // intra-rank scans; register them so each rank's parallel_for budget
  // shrinks to pool_size / num_ranks and the machine never oversubscribes.
  ThreadPool::ScopedActiveRanks pool_share(num_ranks);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      // Stable obs track per rank regardless of thread creation order.
      obs::set_thread_identity("rank-" + std::to_string(r),
                               obs::kTidRankBase + r);
      Comm comm(state, r);
      try {
        obs::Span span("runtime", "rank");
        span.tag("rank", static_cast<std::int64_t>(r));
        fn(comm);
        rank_seconds[static_cast<std::size_t>(r)] = comm.clock();
      } catch (const AbortedError&) {
        // A sibling failed first; its exception carries the report.
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        state.abort_all();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  RunReport report;
  report.wall_seconds = timer.elapsed_seconds();
  report.volume = state.ledger().snapshot();
  report.trace = state.take_trace();
  report.rank_seconds = std::move(rank_seconds);
  report.makespan_seconds = *std::max_element(report.rank_seconds.begin(),
                                              report.rank_seconds.end());
  return report;
}

}  // namespace cubist
