// Collective registry + tuner for Comm::reduce.
//
// Three reduction schedules over the same volume contract, and a cost
// tuner that picks between them per call:
//
//   kBinomial  the original chunk-pipelined binomial tree toward
//              group[0]. Latency-optimal (ceil(log2 g) rounds on the
//              critical path); the root folds ceil(log2 g) operands
//              serially.
//   kRing      a chunk-pipelined chain toward group[0] (member i
//              receives from i+1, folds, forwards to i-1). Bandwidth-
//              optimal at the root for large dense blocks: every member
//              folds exactly one operand per chunk and the folds
//              pipeline down the chain, at the price of g-1 hops of fill
//              latency. (A ring reduce-scatter + allgather was rejected:
//              it ships 2(g-1)/g of the block per member, which would
//              break the Lemma-1 *equality* the verifier certifies.)
//   kTwoLevel  hierarchical: binomial among the members on each machine
//              node onto a node leader, then binomial among the leaders.
//              On a two-tier topology this minimizes inter-node edges
//              (one per node beyond the root's); on a flat topology it
//              degenerates to kBinomial exactly.
//
// All three send exactly (group-1) * block elements per reduction — the
// Lemma-1 dense volume — so the static verifier's per-view EQUALITY
// check holds for whichever schedule the tuner picks. All receives are
// fixed-source, so combine order is deterministic by construction and
// the interleaving checker / HB auditor certify tuned schedules exactly
// as they certify binomial.
//
// The generator below is the single source of truth for each schedule:
// Comm::reduce executes it and analysis/comm_plan.cpp plans it, so plan
// and runtime agree by construction, not by parallel maintenance.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "minimpi/cost_model.h"

namespace cubist {

enum class ReduceAlgorithm {
  /// Tuner picks per call from the forced algorithms below.
  kAuto,
  kBinomial,
  kRing,
  kTwoLevel,
};

const char* to_string(ReduceAlgorithm algorithm);
/// Parses "auto" / "binomial" / "ring" / "two-level" (also "two_level").
/// Returns false (and leaves `out` alone) on anything else.
bool parse_reduce_algorithm(std::string_view name, ReduceAlgorithm* out);

/// One step of a member's per-chunk program, in execution order. A
/// kRecvCombine receives from `peer` and folds the payload into the
/// local chunk; a kSend ships the local chunk to `peer`. Every member
/// except group[0] sends exactly once per chunk.
struct ReduceStep {
  enum class Kind { kSend, kRecvCombine };
  Kind kind = Kind::kSend;
  /// Peer RANK (not group index).
  int peer = -1;

  bool operator==(const ReduceStep&) const = default;
};

/// The per-chunk schedule of group member `me_index` (an index into
/// `group`) under `algorithm` (must be forced, not kAuto). The same
/// program runs for every chunk of the block.
std::vector<ReduceStep> reduce_chunk_steps(ReduceAlgorithm algorithm,
                                           std::span<const int> group,
                                           int me_index,
                                           const Topology& topology);

/// Chunk size in elements for a block of `total_elements` reduced over
/// `group_size` members. A non-zero `max_message_elements` always wins;
/// with no cap, binomial and two-level ship the whole block per message
/// while the ring auto-chunks to ~2(g-1) pieces so the chain actually
/// pipelines (a whole-block chain would serialize g-1 full transfers).
std::int64_t reduce_chunk_elements(ReduceAlgorithm algorithm,
                                   std::int64_t total_elements,
                                   int group_size,
                                   std::int64_t max_message_elements);

/// Predicted makespan of one reduction under `algorithm` (must be
/// forced): a deterministic event-driven replay of the generated
/// schedule under the same LogP charging rules as the runtime's virtual
/// clock, with per-edge link costs from `model`. `density_hint` scales
/// the estimated wire bytes (when `encode_wire`) and combine updates.
double simulate_reduce_seconds(ReduceAlgorithm algorithm,
                               std::span<const int> group,
                               std::int64_t total_elements,
                               std::int64_t max_message_elements,
                               const CostModel& model, double density_hint,
                               bool encode_wire);

/// The tuner: cheapest predicted algorithm for this call. Binomial is
/// the incumbent — an alternative is picked only when its predicted
/// makespan beats binomial's by a safety margin, so `kAuto` never does
/// worse than forced binomial by more than model error.
ReduceAlgorithm choose_reduce_algorithm(std::span<const int> group,
                                        std::int64_t total_elements,
                                        std::int64_t max_message_elements,
                                        const CostModel& model,
                                        double density_hint,
                                        bool encode_wire);

/// `requested` itself when forced; the tuner's choice for kAuto. Both
/// the runtime reduce and the static planner resolve through this exact
/// function (on the same static inputs), which is what keeps the plan
/// and the execution in lockstep.
ReduceAlgorithm resolve_reduce_algorithm(ReduceAlgorithm requested,
                                         std::span<const int> group,
                                         std::int64_t total_elements,
                                         std::int64_t max_message_elements,
                                         const CostModel& model,
                                         double density_hint,
                                         bool encode_wire);

}  // namespace cubist
