// Tiling extension (paper §3: "what is the significance of the aggregation
// tree when the [Theorem-1] factor exceeds the available main memory?").
//
// When the memory bound does not fit, the input is processed in slabs
// along dimension 0 (the largest, under the canonical ordering). Views
// retaining dimension 0 are produced slab by slab and written out as soon
// as a slab's portion is complete, so only 1/T of them is ever live; views
// lacking dimension 0 accumulate across slabs. Because the aggregation
// tree minimizes the live set, it minimizes the number of slabs required —
// the property the paper claims for tiling. This is a deliberately
// simplified (single-dimension) variant of the authors' follow-up tiling
// paper; DESIGN.md records the substitution.
#pragma once

#include <cstdint>

#include "array/sparse_array.h"
#include "core/cube_result.h"

namespace cubist {

/// Slab plan: dimension 0 is cut into `num_tiles` slabs of extent
/// `tile_extent` (last slab may be smaller).
struct TilingPlan {
  std::int64_t num_tiles = 1;
  std::int64_t tile_extent = 0;
  /// Predicted peak live bytes under this plan (slab-cube peak plus the
  /// persistent dimension-0-free accumulators).
  std::int64_t predicted_peak_bytes = 0;
};

/// Smallest number of slabs whose predicted peak fits `memory_budget`
/// bytes. Throws if even per-row slabs (extent 1) do not fit.
TilingPlan plan_tiling(const std::vector<std::int64_t>& sizes,
                       std::int64_t memory_budget);

/// Work/memory/I/O accounting of a tiled run.
struct TiledBuildStats {
  std::int64_t peak_live_bytes = 0;
  /// Bytes written back, including per-slab partial write-outs.
  std::int64_t written_bytes = 0;
  std::int64_t cells_scanned = 0;
  std::int64_t updates = 0;
  std::int64_t tiles = 1;
  /// High-water mark of transient scan-scratch bytes across all slabs.
  std::int64_t peak_scratch_bytes = 0;
};

/// Builds the full cube slab by slab under `plan`. The result is
/// identical to build_cube_sequential's (asserted by tests); only the
/// memory/I/O profile differs.
CubeResult build_cube_tiled(const SparseArray& root, const TilingPlan& plan,
                            TiledBuildStats* stats = nullptr);

}  // namespace cubist
