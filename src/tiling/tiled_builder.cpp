#include "tiling/tiled_builder.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/mathutil.h"
#include "core/sequential_builder.h"
#include "io/generators.h"
#include "lattice/cube_lattice.h"
#include "lattice/memory_sim.h"
#include "obs/trace.h"

namespace cubist {
namespace {

/// Total cells of all views that do not retain dimension 0 (they must stay
/// live across every slab): sum over subsets of {1..n-1} of the retained
/// extents' product = prod_{j>=1} (1 + D_j).
std::int64_t persistent_cells(const std::vector<std::int64_t>& sizes) {
  std::int64_t cells = 1;
  for (std::size_t j = 1; j < sizes.size(); ++j) {
    cells *= 1 + sizes[j];
  }
  return cells;
}

std::int64_t predicted_peak(const std::vector<std::int64_t>& sizes,
                            std::int64_t tile_extent) {
  std::vector<std::int64_t> slab_sizes = sizes;
  slab_sizes[0] = tile_extent;
  return sequential_memory_bound(CubeLattice(slab_sizes),
                                 static_cast<std::int64_t>(sizeof(Value))) +
         persistent_cells(sizes) * static_cast<std::int64_t>(sizeof(Value));
}

}  // namespace

TilingPlan plan_tiling(const std::vector<std::int64_t>& sizes,
                       std::int64_t memory_budget) {
  CUBIST_CHECK(!sizes.empty(), "no dimensions");
  CUBIST_CHECK(memory_budget > 0, "budget must be positive");
  const std::int64_t d0 = sizes[0];
  for (std::int64_t tiles = 1; tiles <= d0; ++tiles) {
    const std::int64_t extent = ceil_div(d0, tiles);
    // Skip tile counts that do not shrink the slab further.
    if (tiles > 1 && extent == ceil_div(d0, tiles - 1)) continue;
    TilingPlan plan;
    plan.num_tiles = ceil_div(d0, extent);
    plan.tile_extent = extent;
    plan.predicted_peak_bytes = predicted_peak(sizes, extent);
    if (plan.predicted_peak_bytes <= memory_budget) {
      return plan;
    }
  }
  CUBIST_CHECK(false, "memory budget " << memory_budget
                                       << " B unreachable even with "
                                          "single-row slabs");
  return {};
}

CubeResult build_cube_tiled(const SparseArray& root, const TilingPlan& plan,
                            TiledBuildStats* stats) {
  const std::vector<std::int64_t> sizes = root.shape().extents();
  const int n = root.ndim();
  CUBIST_CHECK(plan.tile_extent >= 1 && plan.tile_extent <= sizes[0],
               "bad tile extent");
  CubeResult result(sizes);
  TiledBuildStats totals;
  totals.tiles = ceil_div(sizes[0], plan.tile_extent);

  // Views lacking dimension 0 accumulate across slabs; everything else is
  // emitted per slab into its final place.
  std::map<std::uint32_t, DenseArray> persistent;
  const std::int64_t persistent_bytes =
      persistent_cells(sizes) * static_cast<std::int64_t>(sizeof(Value));

  for (std::int64_t lo = 0; lo < sizes[0]; lo += plan.tile_extent) {
    obs::Span tile_span("build", "tile");
    tile_span.tag("lo", lo);
    const std::int64_t hi = std::min(sizes[0], lo + plan.tile_extent);
    std::vector<std::int64_t> slab_lo(static_cast<std::size_t>(n), 0);
    std::vector<std::int64_t> slab_hi = sizes;
    slab_lo[0] = lo;
    slab_hi[0] = hi;
    const BlockRange slab(slab_lo, slab_hi);
    std::vector<std::int64_t> chunks = default_chunks(slab.extents());
    const SparseArray slab_root = extract_block(root, slab, std::move(chunks));

    BuildStats slab_stats;
    CubeResult slab_cube = build_cube_sequential(slab_root, &slab_stats);
    totals.cells_scanned += slab_stats.cells_scanned;
    totals.updates += slab_stats.updates;
    totals.peak_live_bytes =
        std::max(totals.peak_live_bytes,
                 slab_stats.peak_live_bytes + persistent_bytes);
    totals.peak_scratch_bytes =
        std::max(totals.peak_scratch_bytes, slab_stats.peak_scratch_bytes);

    for (DimSet view : slab_cube.stored_views()) {
      DenseArray slab_view = slab_cube.take(view);
      if (view.contains(0)) {
        // Dimension 0 is the slowest-varying dimension of the view, so the
        // slab's portion is one contiguous stretch of the full array.
        if (!result.has(view)) {
          std::vector<std::int64_t> extents;
          for (int d : view.dims()) extents.push_back(sizes[d]);
          result.put(view, DenseArray{Shape{extents}});
        }
        DenseArray& full = result.mutable_view(view);
        const std::int64_t offset = lo * full.shape().stride(0);
        std::copy(slab_view.data(), slab_view.data() + slab_view.size(),
                  full.data() + offset);
        totals.written_bytes += slab_view.bytes();
      } else {
        auto [it, inserted] = persistent.try_emplace(view.mask(),
                                                     std::move(slab_view));
        if (!inserted) {
          it->second.accumulate(slab_view);
        }
      }
    }
  }
  for (auto& [mask, array] : persistent) {
    totals.written_bytes += array.bytes();
    result.put(DimSet::from_mask(mask), std::move(array));
  }
  if (stats != nullptr) {
    *stats = totals;
  }
  return result;
}

}  // namespace cubist
