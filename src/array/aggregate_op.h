// Generalized aggregation operators (extension; the paper fixes SUM).
//
// The cube operator is defined for any distributive aggregate; cubist
// supports SUM, COUNT, MIN and MAX end to end (sequential, parallel,
// tiled). AVG is derived: build a SUM cube and a COUNT cube in two passes
// and divide (`average_of`).
//
// Empty-cell semantics: a zero cell of a dense array and an absent cell
// of a sparse array both mean "no measurement". While an aggregate view
// is live, empty cells hold the operator's identity (0 for SUM/COUNT,
// +inf/-inf for MIN/MAX) so deeper aggregation levels and parallel
// reductions stay correct; `finalize_view` replaces leftover identities
// with 0 at write-back so persisted views never contain infinities.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "array/aggregate.h"
#include "array/dense_array.h"
#include "array/sparse_array.h"

namespace cubist {

enum class AggregateOp {
  kSum,
  kCount,
  kMin,
  kMax,
};

/// Human-readable operator name ("sum", "count", ...).
std::string to_string(AggregateOp op);

/// The operator's identity element (what live empty cells hold).
constexpr Value identity_of(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kCount:
      return Value{0};
    case AggregateOp::kMin:
      return std::numeric_limits<Value>::infinity();
    case AggregateOp::kMax:
      return -std::numeric_limits<Value>::infinity();
  }
  return Value{0};
}

/// accumulator <- accumulator (op) contribution.
constexpr void combine(AggregateOp op, Value& accumulator, Value value) {
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kCount:
      accumulator += value;
      break;
    case AggregateOp::kMin:
      if (value < accumulator) accumulator = value;
      break;
    case AggregateOp::kMax:
      if (value > accumulator) accumulator = value;
      break;
  }
}

/// The contribution a single *input* cell makes (COUNT maps values to 1;
/// the others pass the value through).
constexpr Value contribution_of(AggregateOp op, Value value) {
  return op == AggregateOp::kCount ? Value{1} : value;
}

/// Fills `array` with the operator's identity (builders call this right
/// after allocating a child view).
void fill_identity(AggregateOp op, DenseArray& array);

/// Replaces leftover identity cells with 0 before a view is written back.
/// No-op for SUM/COUNT.
void finalize_view(AggregateOp op, DenseArray& array);

/// Multi-way simultaneous aggregation under `op`. `input_level` selects
/// the cell semantics: true means `parent` holds raw input (empty = 0 /
/// absent; COUNT counts cells), false means `parent` is itself an
/// aggregate view whose empty cells hold the identity.
AggregationStats aggregate_children_op(
    const DenseArray& parent, std::span<const AggregationTarget> targets,
    AggregateOp op, bool input_level);
AggregationStats aggregate_children_op(
    const SparseArray& parent, std::span<const AggregationTarget> targets,
    AggregateOp op);

/// Elementwise combine of two partial aggregate views (the parallel
/// reduction step): dst <- dst (op) src.
void combine_arrays(AggregateOp op, DenseArray& dst, const DenseArray& src);

/// AVG derived from a SUM view and a COUNT view of the same shape
/// (cells with count 0 yield 0).
DenseArray average_of(const DenseArray& sum, const DenseArray& count);

}  // namespace cubist
