#include "array/sparse_array.h"

#include <algorithm>

#include "common/mathutil.h"

namespace cubist {
namespace {

Shape make_chunk_grid(const Shape& shape,
                      const std::vector<std::int64_t>& chunk_extents) {
  CUBIST_CHECK(static_cast<int>(chunk_extents.size()) == shape.ndim(),
               "chunk rank mismatch");
  std::vector<std::int64_t> grid(chunk_extents.size());
  for (int d = 0; d < shape.ndim(); ++d) {
    CUBIST_CHECK(chunk_extents[d] > 0, "chunk extent must be positive");
    grid[d] = ceil_div(shape.extent(d), chunk_extents[d]);
  }
  return Shape(std::move(grid));
}

}  // namespace

SparseArray::SparseArray(Shape shape, std::vector<std::int64_t> chunk_extents)
    : shape_(std::move(shape)),
      chunk_extents_(std::move(chunk_extents)),
      chunk_grid_(make_chunk_grid(shape_, chunk_extents_)),
      chunks_(static_cast<std::size_t>(chunk_grid_.size())) {
  std::int64_t chunk_volume = checked_product(chunk_extents_);
  CUBIST_CHECK(chunk_volume <= std::int64_t{1} << 32,
               "chunk volume exceeds 32-bit offsets");
}

SparseArray SparseArray::from_dense(const DenseArray& dense,
                                    std::vector<std::int64_t> chunk_extents) {
  SparseArray sparse(dense.shape(), std::move(chunk_extents));
  std::vector<std::int64_t> index(static_cast<std::size_t>(dense.ndim()), 0);
  for (std::int64_t linear = 0; linear < dense.size(); ++linear) {
    dense.shape().unravel(linear, index.data());
    if (dense[linear] != Value{0}) {
      sparse.push(index.data(), dense[linear]);
    }
  }
  sparse.finalize();
  return sparse;
}

std::int64_t SparseArray::locate(const std::int64_t* index,
                                 Offset* offset_out) const {
  std::int64_t chunk_linear = 0;
  std::int64_t offset = 0;
  for (int d = 0; d < ndim(); ++d) {
    CUBIST_DCHECK(index[d] >= 0 && index[d] < shape_.extent(d),
                  "index out of bounds in dim " << d);
    const std::int64_t chunk_coord = index[d] / chunk_extents_[d];
    const std::int64_t local = index[d] - chunk_coord * chunk_extents_[d];
    chunk_linear += chunk_coord * chunk_grid_.stride(d);
    // Boundary chunks use their own (clipped) extents for the offset basis.
    const std::int64_t this_extent =
        std::min(chunk_extents_[d],
                 shape_.extent(d) - chunk_coord * chunk_extents_[d]);
    offset = offset * this_extent + local;
  }
  *offset_out = static_cast<Offset>(offset);
  return chunk_linear;
}

void SparseArray::push(const std::int64_t* index, Value value) {
  CUBIST_CHECK(!finalized_, "push after finalize");
  if (value == Value{0}) return;
  Offset offset;
  const std::int64_t chunk_id = locate(index, &offset);
  Chunk& chunk = chunks_[static_cast<std::size_t>(chunk_id)];
  chunk.offsets.push_back(offset);
  chunk.values.push_back(value);
  ++nnz_;
}

void SparseArray::finalize() {
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    Chunk& chunk = chunks_[c];
    bool sorted = true;
    for (std::size_t i = 1; i < chunk.offsets.size(); ++i) {
      CUBIST_CHECK(chunk.offsets[i - 1] != chunk.offsets[i],
                   "chunk " << c << " has a duplicate offset");
      if (chunk.offsets[i - 1] > chunk.offsets[i]) {
        sorted = false;
        break;
      }
    }
    if (sorted) continue;
    // Cells can arrive out of chunk order (e.g. extract_block walks the
    // source's chunks, not the destination's); restore the canonical
    // ascending-offset layout.
    std::vector<std::size_t> order(chunk.offsets.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return chunk.offsets[a] < chunk.offsets[b];
    });
    Chunk sorted_chunk;
    sorted_chunk.offsets.reserve(chunk.offsets.size());
    sorted_chunk.values.reserve(chunk.values.size());
    for (std::size_t i : order) {
      CUBIST_CHECK(sorted_chunk.offsets.empty() ||
                       sorted_chunk.offsets.back() != chunk.offsets[i],
                   "chunk " << c << " has a duplicate offset");
      sorted_chunk.offsets.push_back(chunk.offsets[i]);
      sorted_chunk.values.push_back(chunk.values[i]);
    }
    chunk = std::move(sorted_chunk);
  }
  finalized_ = true;
}

std::vector<std::int64_t> SparseArray::chunk_shape_at(
    const std::vector<std::int64_t>& chunk_coords) const {
  std::vector<std::int64_t> extents(static_cast<std::size_t>(ndim()));
  for (int d = 0; d < ndim(); ++d) {
    extents[d] = std::min(chunk_extents_[d],
                          shape_.extent(d) - chunk_coords[d] * chunk_extents_[d]);
  }
  return extents;
}

std::vector<std::int64_t> SparseArray::chunk_base(
    const std::vector<std::int64_t>& chunk_coords) const {
  std::vector<std::int64_t> base(static_cast<std::size_t>(ndim()));
  for (int d = 0; d < ndim(); ++d) {
    base[d] = chunk_coords[d] * chunk_extents_[d];
  }
  return base;
}

bool SparseArray::chunk_is_full(
    const std::vector<std::int64_t>& chunk_coords) const {
  for (int d = 0; d < ndim(); ++d) {
    if ((chunk_coords[d] + 1) * chunk_extents_[d] > shape_.extent(d)) {
      return false;
    }
  }
  return true;
}

void SparseArray::for_each_nonzero(
    const std::function<void(const std::int64_t*, Value)>& fn) const {
  std::vector<std::int64_t> chunk_coords(static_cast<std::size_t>(ndim()), 0);
  std::vector<std::int64_t> index(static_cast<std::size_t>(ndim()), 0);
  for (std::int64_t chunk_id = 0; chunk_id < num_chunks(); ++chunk_id) {
    chunk_grid_.unravel(chunk_id, chunk_coords.data());
    const auto base = chunk_base(chunk_coords);
    const auto extents = chunk_shape_at(chunk_coords);
    const Shape local_shape{extents};
    const Chunk& chunk = chunks_[static_cast<std::size_t>(chunk_id)];
    for (std::size_t i = 0; i < chunk.offsets.size(); ++i) {
      local_shape.unravel(static_cast<std::int64_t>(chunk.offsets[i]),
                          index.data());
      for (int d = 0; d < ndim(); ++d) {
        index[d] += base[d];
      }
      fn(index.data(), chunk.values[i]);
    }
  }
}

DenseArray SparseArray::to_dense() const {
  DenseArray dense(shape_);
  for_each_nonzero([&](const std::int64_t* index, Value value) {
    dense[shape_.linear_index(index)] += value;
  });
  return dense;
}

}  // namespace cubist
