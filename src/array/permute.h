// Physical dimension permutation.
//
// The aggregation tree is optimal when dimension sizes are non-increasing
// by position (Theorems 6/7). Real data rarely arrives that way, so these
// helpers transpose arrays into a chosen order and translate coordinates
// back. `perm[pos] = d` means output position `pos` holds input
// dimension `d` (the convention of core/ordering.h).
#pragma once

#include <vector>

#include "array/dense_array.h"
#include "array/sparse_array.h"

namespace cubist {

/// Transposed copy of `input` with dimensions reordered by `perm`.
DenseArray permute_dims(const DenseArray& input, const std::vector<int>& perm);

/// Transposed copy of a sparse array; `chunk_extents` are for the OUTPUT
/// order (empty = input chunk extents permuted along).
SparseArray permute_dims(const SparseArray& input, const std::vector<int>& perm,
                         std::vector<std::int64_t> chunk_extents = {});

/// Translates coordinates given in input-dimension order to the permuted
/// (output) order: out[pos] = coords[perm[pos]].
std::vector<std::int64_t> permute_coords(
    const std::vector<std::int64_t>& coords, const std::vector<int>& perm);

}  // namespace cubist
