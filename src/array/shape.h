// Shape: extents + row-major strides of an n-dimensional array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace cubist {

/// Cell value type. Generators emit small integers stored as doubles, so
/// sums are exact and independent of reduction order (see DESIGN.md §2).
using Value = double;

/// Extents and row-major strides. Index 0 is the slowest-varying dimension.
class Shape {
 public:
  Shape() = default;

  explicit Shape(std::vector<std::int64_t> extents);

  int ndim() const { return static_cast<int>(extents_.size()); }
  std::int64_t extent(int d) const { return extents_[d]; }
  const std::vector<std::int64_t>& extents() const { return extents_; }
  std::int64_t stride(int d) const { return strides_[d]; }
  const std::vector<std::int64_t>& strides() const { return strides_; }

  /// Total number of cells (1 for the 0-dimensional `all` scalar).
  std::int64_t size() const { return size_; }

  /// Linear offset of a multi-index (size ndim()).
  std::int64_t linear_index(const std::int64_t* index) const {
    std::int64_t offset = 0;
    for (int d = 0; d < ndim(); ++d) {
      CUBIST_DCHECK(index[d] >= 0 && index[d] < extents_[d],
                    "index out of bounds in dim " << d);
      offset += index[d] * strides_[d];
    }
    return offset;
  }

  std::int64_t linear_index(const std::vector<std::int64_t>& index) const {
    CUBIST_CHECK(static_cast<int>(index.size()) == ndim(),
                 "index rank mismatch");
    return linear_index(index.data());
  }

  /// Inverse of linear_index; writes ndim() coordinates into `index`.
  void unravel(std::int64_t linear, std::int64_t* index) const {
    CUBIST_DCHECK(linear >= 0 && linear < size_, "linear index out of range");
    for (int d = 0; d < ndim(); ++d) {
      index[d] = linear / strides_[d];
      linear -= index[d] * strides_[d];
    }
  }

  /// Shape with dimension `d` removed (the shape of an aggregated child).
  Shape without_dim(int d) const;

  bool operator==(const Shape&) const = default;

  /// "64x64x32" style rendering; the scalar shape prints as "scalar".
  std::string to_string() const;

 private:
  std::vector<std::int64_t> extents_;
  std::vector<std::int64_t> strides_;
  std::int64_t size_ = 1;
};

}  // namespace cubist
