#include "array/shape.h"

#include <sstream>

#include "common/mathutil.h"

namespace cubist {

Shape::Shape(std::vector<std::int64_t> extents)
    : extents_(std::move(extents)) {
  size_ = checked_product(extents_);  // also validates positivity
  strides_.resize(extents_.size());
  std::int64_t stride = 1;
  for (int d = ndim() - 1; d >= 0; --d) {
    strides_[d] = stride;
    stride *= extents_[d];
  }
}

Shape Shape::without_dim(int d) const {
  CUBIST_CHECK(d >= 0 && d < ndim(), "dimension " << d << " out of range");
  std::vector<std::int64_t> reduced;
  reduced.reserve(extents_.size() - 1);
  for (int i = 0; i < ndim(); ++i) {
    if (i != d) reduced.push_back(extents_[i]);
  }
  return Shape(std::move(reduced));
}

std::string Shape::to_string() const {
  if (ndim() == 0) return "scalar";
  std::ostringstream out;
  for (int d = 0; d < ndim(); ++d) {
    if (d) out << 'x';
    out << extents_[d];
  }
  return out.str();
}

}  // namespace cubist
