// Adaptive wire codec for reduction payloads (the "sparsity-aware" half of
// the pipelined communication engine; see docs/PERFORMANCE.md,
// "Communication engine").
//
// A partial aggregate block travelling up the Figure-5 reduction tree is
// logically a dense run of Values, but for sparse inputs most of its cells
// still hold the operator's identity. The codec encodes each chunk in the
// cheapest of four self-describing forms:
//
//   kRaw         headerless; payload is exactly elements * sizeof(Value)
//                bytes. The fallback that makes the codec lossless for
//                arbitrary data AND caps the wire at the dense volume.
//   kDenseNarrow header + one uint32 per cell (every cell, identity
//                included, is an exact small non-negative integer — the
//                common case for this repository's integer-exact SUM/COUNT
//                views; see DESIGN.md §2).
//   kRunsWide    header + run directory + raw Values of the non-identity
//                cells only (identity cells are skipped on the wire).
//   kRunsNarrow  kRunsWide with uint32 values.
//
// Self-description without per-message framing overhead: the receiver
// always knows the logical element count of a chunk (both sides of a
// reduction walk the same chunk schedule), and an encoded payload is only
// ever emitted when it is STRICTLY smaller than the raw form — so
// `payload.size() == elements * sizeof(Value)` <=> raw, and anything
// smaller starts with a WireHeader. This guarantees, per message,
// wire bytes <= logical bytes, which is what lets the schedule verifier
// certify measured wire volume against the dense Lemma-1 closed form.
//
// Identity detection is BITWISE (the exact bit pattern of
// identity_of(op)), so decode(encode(x)) reproduces x bit-for-bit and
// combining an encoded payload performs the same per-cell arithmetic as
// combining the raw block, in the same order. The one documented caveat:
// a raw combine of +0.0 into a -0.0 accumulator would flip the sign bit,
// while run-skipping leaves -0.0 alone; cells equal under ==, one bit
// apart. The repository's integer-valued non-negative data never
// manufactures -0.0.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "array/aggregate_op.h"

namespace cubist {

class ThreadPool;

/// Encoding policy of one reduction (ParallelOptions plumbs this through).
struct WirePolicy {
  /// Master switch. Disabled, the reduce path ships raw Values and the
  /// ledger's wire bytes equal the logical bytes exactly.
  bool enabled = true;
  /// Non-identity fraction at or below which the run encodings compete;
  /// denser chunks only consider kRaw/kDenseNarrow (skipping the run
  /// directory build for chunks that could not win).
  double density_threshold = 0.5;
};

/// Wire forms; kRaw never carries a header.
enum class WireKind : std::uint8_t {
  kRaw = 0,
  kDenseNarrow = 1,
  kRunsWide = 2,
  kRunsNarrow = 3,
};

/// One maximal run of consecutive non-identity cells within a chunk.
struct WireRun {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// The 8-byte header of every non-raw payload.
struct WireHeader {
  std::uint8_t kind = 0;
  std::uint8_t reserved[3] = {0, 0, 0};
  std::uint32_t run_count = 0;
};
static_assert(sizeof(WireHeader) == 8, "wire header must stay 8 bytes");
static_assert(sizeof(WireRun) == 8, "run directory entries must stay 8 bytes");

/// Parsed, zero-copy description of an encoded payload.
struct WireChunkView {
  WireKind kind = WireKind::kRaw;
  /// Logical cell count of the chunk.
  std::int64_t elements = 0;
  /// Values carried on the wire (== elements for dense kinds, the
  /// non-identity count for run kinds).
  std::int64_t value_count = 0;
  /// Run directory (empty for dense kinds); offsets/lengths in cells.
  std::span<const WireRun> runs;
  /// The value section: value_count values, 4 or 8 bytes each.
  std::span<const std::byte> values;
};

/// Encodes one chunk under `op`'s identity. The result is either exactly
/// `chunk.size() * sizeof(Value)` raw bytes, or a strictly smaller
/// header-tagged payload. With `policy.enabled == false` always raw.
std::vector<std::byte> encode_chunk(std::span<const Value> chunk,
                                    AggregateOp op, const WirePolicy& policy);

/// Parses (and validates) a payload produced by encode_chunk for a chunk
/// of `elements` logical cells. Zero-copy: the view aliases `payload`.
WireChunkView parse_chunk(std::span<const std::byte> payload,
                          std::int64_t elements);

/// Materializes the chunk: identity cells restored from `op`. Mostly a
/// test/debug convenience — the reduce path combines without this.
std::vector<Value> decode_chunk(std::span<const std::byte> payload,
                                std::int64_t elements, AggregateOp op);

/// dst[i] <- dst[i] (op) chunk[i] straight off the wire, skipping identity
/// cells of run-encoded payloads (they are combine no-ops). Returns the
/// number of combine updates applied — the receiver's virtual-clock
/// charge. When `pool` is non-null the elementwise work is striped over
/// it in fixed disjoint ranges (bit-identical for any worker count);
/// `max_workers` caps the stripes' concurrency (0 = pool policy).
std::int64_t combine_chunk(AggregateOp op, std::span<Value> dst,
                           std::span<const std::byte> payload,
                           ThreadPool* pool = nullptr, int max_workers = 1);

}  // namespace cubist
