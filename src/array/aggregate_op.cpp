#include "array/aggregate_op.h"

#include <vector>

#include "common/error.h"

namespace cubist {
namespace {

// Child-array stride of each parent dimension, 0 for the aggregated one
// (same mapping as the SUM fast path in aggregate.cpp).
std::vector<std::int64_t> projection_strides(const Shape& parent_shape,
                                             const AggregationTarget& target) {
  const int m = parent_shape.ndim();
  CUBIST_CHECK(target.aggregated_pos >= 0 && target.aggregated_pos < m,
               "aggregated_pos out of range");
  CUBIST_CHECK(target.child != nullptr, "null child array");
  CUBIST_CHECK(target.child->shape() ==
                   parent_shape.without_dim(target.aggregated_pos),
               "child shape mismatch");
  std::vector<std::int64_t> strides(static_cast<std::size_t>(m), 0);
  int child_dim = 0;
  for (int d = 0; d < m; ++d) {
    if (d == target.aggregated_pos) continue;
    strides[d] = target.child->shape().stride(child_dim);
    ++child_dim;
  }
  return strides;
}

}  // namespace

std::string to_string(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kCount:
      return "count";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
  }
  return "?";
}

void fill_identity(AggregateOp op, DenseArray& array) {
  array.fill(identity_of(op));
}

void finalize_view(AggregateOp op, DenseArray& array) {
  if (op == AggregateOp::kSum || op == AggregateOp::kCount) return;
  const Value identity = identity_of(op);
  Value* data = array.data();
  for (std::int64_t i = 0; i < array.size(); ++i) {
    if (data[i] == identity) data[i] = Value{0};
  }
}

AggregationStats aggregate_children_op(
    const DenseArray& parent, std::span<const AggregationTarget> targets,
    AggregateOp op, bool input_level) {
  const std::size_t num_targets = targets.size();
  if (num_targets == 0) return {};
  const int m = parent.ndim();
  CUBIST_CHECK(m >= 1, "cannot aggregate a scalar parent");

  std::vector<std::vector<std::int64_t>> strides;
  strides.reserve(num_targets);
  for (const auto& target : targets) {
    strides.push_back(projection_strides(parent.shape(), target));
  }
  // A cell is skipped if it is empty: raw input marks empty with 0, a live
  // aggregate view with the operator's identity. (For SUM/COUNT at input
  // level, "skipping" zeros is a pure optimization — they contribute the
  // identity anyway.)
  const Value empty_marker = input_level ? Value{0} : identity_of(op);

  AggregationStats stats;
  std::vector<std::int64_t> index(static_cast<std::size_t>(m), 0);
  for (std::int64_t linear = 0; linear < parent.size(); ++linear) {
    parent.shape().unravel(linear, index.data());
    const Value raw = parent[linear];
    ++stats.cells_scanned;
    if (raw == empty_marker) continue;
    const Value value = input_level ? contribution_of(op, raw) : raw;
    for (std::size_t c = 0; c < num_targets; ++c) {
      std::int64_t projected = 0;
      for (int d = 0; d < m; ++d) {
        projected += index[d] * strides[c][d];
      }
      combine(op, (*targets[c].child)[projected], value);
      ++stats.updates;
    }
  }
  return stats;
}

AggregationStats aggregate_children_op(
    const SparseArray& parent, std::span<const AggregationTarget> targets,
    AggregateOp op) {
  const std::size_t num_targets = targets.size();
  if (num_targets == 0) return {};
  const int m = parent.ndim();
  CUBIST_CHECK(m >= 1, "cannot aggregate a scalar parent");

  std::vector<std::vector<std::int64_t>> strides;
  strides.reserve(num_targets);
  for (const auto& target : targets) {
    strides.push_back(projection_strides(parent.shape(), target));
  }
  AggregationStats stats;
  parent.for_each_nonzero([&](const std::int64_t* index, Value raw) {
    const Value value = contribution_of(op, raw);
    for (std::size_t c = 0; c < num_targets; ++c) {
      std::int64_t projected = 0;
      for (int d = 0; d < m; ++d) {
        projected += index[d] * strides[c][d];
      }
      combine(op, (*targets[c].child)[projected], value);
      ++stats.updates;
    }
    ++stats.cells_scanned;
  });
  return stats;
}

void combine_arrays(AggregateOp op, DenseArray& dst, const DenseArray& src) {
  CUBIST_CHECK(dst.shape() == src.shape(), "combine shape mismatch");
  Value* d = dst.data();
  const Value* s = src.data();
  for (std::int64_t i = 0; i < dst.size(); ++i) {
    combine(op, d[i], s[i]);
  }
}

DenseArray average_of(const DenseArray& sum, const DenseArray& count) {
  CUBIST_CHECK(sum.shape() == count.shape(), "average shape mismatch");
  DenseArray avg{sum.shape()};
  for (std::int64_t i = 0; i < sum.size(); ++i) {
    avg[i] = count[i] == Value{0} ? Value{0} : sum[i] / count[i];
  }
  return avg;
}

}  // namespace cubist
