#include "array/wire_codec.h"

#include <bit>
#include <cstring>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"

namespace cubist {
namespace {

// Combine work below this many cells (or runs) stays inline: the pool's
// dispatch cost would dwarf the arithmetic.
constexpr std::int64_t kMinCellsPerCombineStripe = 8192;
constexpr std::int64_t kMinRunsPerCombineStripe = 256;

std::uint64_t bits_of(Value v) { return std::bit_cast<std::uint64_t>(v); }

/// True when `v` round-trips bit-exactly through uint32 (the narrow wire
/// form). Truncation, negatives, -0.0, NaN and infinities all fail.
bool u32_exact(Value v) {
  if (!(v >= Value{0} &&
        v <= static_cast<Value>(std::numeric_limits<std::uint32_t>::max()))) {
    return false;
  }
  const auto u = static_cast<std::uint32_t>(v);
  return bits_of(static_cast<Value>(u)) == bits_of(v);
}

void append_bytes(std::vector<std::byte>& out, const void* src,
                  std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(src);
  out.insert(out.end(), p, p + bytes);
}

std::vector<std::byte> encode_raw(std::span<const Value> chunk) {
  std::vector<std::byte> out(chunk.size_bytes());
  if (!chunk.empty()) std::memcpy(out.data(), chunk.data(), out.size());
  return out;
}

Value load_wide(std::span<const std::byte> values, std::int64_t i) {
  Value v;
  std::memcpy(&v, values.data() + i * static_cast<std::int64_t>(sizeof(Value)),
              sizeof(Value));
  return v;
}

Value load_narrow(std::span<const std::byte> values, std::int64_t i) {
  std::uint32_t u;
  std::memcpy(
      &u, values.data() + i * static_cast<std::int64_t>(sizeof(std::uint32_t)),
      sizeof(std::uint32_t));
  return static_cast<Value>(u);
}

}  // namespace

std::vector<std::byte> encode_chunk(std::span<const Value> chunk,
                                    AggregateOp op, const WirePolicy& policy) {
  const auto n = static_cast<std::int64_t>(chunk.size());
  CUBIST_CHECK(
      static_cast<std::uint64_t>(n) <= std::numeric_limits<std::uint32_t>::max(),
      "chunk of " << n << " cells exceeds the wire format's 32-bit indexing");
  const std::int64_t raw_bytes = n * static_cast<std::int64_t>(sizeof(Value));
  if (!policy.enabled || n == 0) return encode_raw(chunk);

  // One analysis pass: run structure under the operator's bitwise identity,
  // and uint32-exactness of all cells / of the non-identity cells.
  const std::uint64_t identity_bits = bits_of(identity_of(op));
  std::vector<WireRun> runs;
  std::int64_t nonzero = 0;
  bool all_narrow = true;      // every cell, identity included
  bool values_narrow = true;   // non-identity cells only
  for (std::int64_t i = 0; i < n; ++i) {
    const Value v = chunk[i];
    if (bits_of(v) == identity_bits) {
      if (all_narrow && !u32_exact(v)) all_narrow = false;
      continue;
    }
    ++nonzero;
    if (values_narrow && !u32_exact(v)) values_narrow = all_narrow = false;
    if (!runs.empty() &&
        static_cast<std::int64_t>(runs.back().offset) +
                static_cast<std::int64_t>(runs.back().length) ==
            i) {
      ++runs.back().length;
    } else {
      runs.push_back({static_cast<std::uint32_t>(i), 1});
    }
  }

  const bool runs_allowed =
      static_cast<double>(nonzero) <=
      policy.density_threshold * static_cast<double>(n);
  const auto r = static_cast<std::int64_t>(runs.size());
  const std::int64_t header = static_cast<std::int64_t>(sizeof(WireHeader));
  const std::int64_t directory = r * static_cast<std::int64_t>(sizeof(WireRun));

  // Candidates in fixed preference order (sparser forms first); the
  // strictly-smaller-than-raw rule is what keeps raw payloads the unique
  // ones of size raw_bytes.
  WireKind best = WireKind::kRaw;
  std::int64_t best_bytes = raw_bytes;
  const auto consider = [&](WireKind kind, std::int64_t bytes, bool allowed) {
    if (allowed && bytes < best_bytes) {
      best = kind;
      best_bytes = bytes;
    }
  };
  consider(WireKind::kRunsNarrow, header + directory + nonzero * 4,
           runs_allowed && values_narrow);
  consider(WireKind::kRunsWide, header + directory + nonzero * 8,
           runs_allowed);
  consider(WireKind::kDenseNarrow, header + n * 4, all_narrow);
  if (best == WireKind::kRaw) return encode_raw(chunk);

  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(best_bytes));
  WireHeader hdr;
  hdr.kind = static_cast<std::uint8_t>(best);
  hdr.run_count = best == WireKind::kDenseNarrow
                      ? 0
                      : static_cast<std::uint32_t>(r);
  append_bytes(out, &hdr, sizeof(hdr));
  switch (best) {
    case WireKind::kDenseNarrow:
      for (std::int64_t i = 0; i < n; ++i) {
        const auto u = static_cast<std::uint32_t>(chunk[i]);
        append_bytes(out, &u, sizeof(u));
      }
      break;
    case WireKind::kRunsWide:
      append_bytes(out, runs.data(), static_cast<std::size_t>(directory));
      for (const WireRun& run : runs) {
        append_bytes(out, chunk.data() + run.offset,
                     static_cast<std::size_t>(run.length) * sizeof(Value));
      }
      break;
    case WireKind::kRunsNarrow:
      append_bytes(out, runs.data(), static_cast<std::size_t>(directory));
      for (const WireRun& run : runs) {
        for (std::uint32_t k = 0; k < run.length; ++k) {
          const auto u = static_cast<std::uint32_t>(chunk[run.offset + k]);
          append_bytes(out, &u, sizeof(u));
        }
      }
      break;
    case WireKind::kRaw:
      CUBIST_ASSERT(false, "raw is handled above");
  }
  CUBIST_ASSERT(static_cast<std::int64_t>(out.size()) == best_bytes,
                "encoded payload size mismatch");
  return out;
}

WireChunkView parse_chunk(std::span<const std::byte> payload,
                          std::int64_t elements) {
  CUBIST_CHECK(elements >= 0, "negative chunk element count");
  const std::int64_t raw_bytes =
      elements * static_cast<std::int64_t>(sizeof(Value));
  WireChunkView view;
  view.elements = elements;
  if (static_cast<std::int64_t>(payload.size()) == raw_bytes) {
    view.kind = WireKind::kRaw;
    view.value_count = elements;
    view.values = payload;
    return view;
  }
  CUBIST_CHECK(payload.size() >= sizeof(WireHeader),
               "wire payload shorter than its header ("
                   << payload.size() << " bytes for " << elements
                   << " cells)");
  WireHeader hdr;
  std::memcpy(&hdr, payload.data(), sizeof(hdr));
  const auto kind = static_cast<WireKind>(hdr.kind);
  CUBIST_CHECK(kind == WireKind::kDenseNarrow || kind == WireKind::kRunsWide ||
                   kind == WireKind::kRunsNarrow,
               "unknown wire kind " << int{hdr.kind});
  view.kind = kind;
  std::span<const std::byte> rest = payload.subspan(sizeof(WireHeader));

  if (kind == WireKind::kDenseNarrow) {
    CUBIST_CHECK(hdr.run_count == 0, "dense wire payload carries runs");
    CUBIST_CHECK(static_cast<std::int64_t>(rest.size()) == elements * 4,
                 "dense-narrow payload size mismatch");
    view.value_count = elements;
    view.values = rest;
    return view;
  }

  const auto r = static_cast<std::int64_t>(hdr.run_count);
  const std::int64_t directory = r * static_cast<std::int64_t>(sizeof(WireRun));
  CUBIST_CHECK(static_cast<std::int64_t>(rest.size()) >= directory,
               "run directory extends past the payload");
  view.runs = std::span<const WireRun>(
      reinterpret_cast<const WireRun*>(rest.data()),
      static_cast<std::size_t>(r));
  std::int64_t covered = 0;
  std::int64_t next_free = 0;
  for (const WireRun& run : view.runs) {
    CUBIST_CHECK(run.length >= 1, "empty run in wire payload");
    CUBIST_CHECK(static_cast<std::int64_t>(run.offset) >= next_free,
                 "wire runs out of order or overlapping");
    next_free = static_cast<std::int64_t>(run.offset) +
                static_cast<std::int64_t>(run.length);
    CUBIST_CHECK(next_free <= elements, "wire run exceeds the chunk");
    covered += static_cast<std::int64_t>(run.length);
  }
  const std::int64_t value_bytes =
      covered * (kind == WireKind::kRunsNarrow ? 4 : 8);
  CUBIST_CHECK(static_cast<std::int64_t>(rest.size()) == directory + value_bytes,
               "run-encoded payload size mismatch");
  view.value_count = covered;
  view.values = rest.subspan(static_cast<std::size_t>(directory));
  return view;
}

std::vector<Value> decode_chunk(std::span<const std::byte> payload,
                                std::int64_t elements, AggregateOp op) {
  const WireChunkView view = parse_chunk(payload, elements);
  std::vector<Value> out(static_cast<std::size_t>(elements), identity_of(op));
  switch (view.kind) {
    case WireKind::kRaw:
      if (elements > 0) {
        std::memcpy(out.data(), view.values.data(),
                    static_cast<std::size_t>(elements) * sizeof(Value));
      }
      break;
    case WireKind::kDenseNarrow:
      for (std::int64_t i = 0; i < elements; ++i) {
        out[static_cast<std::size_t>(i)] = load_narrow(view.values, i);
      }
      break;
    case WireKind::kRunsWide:
    case WireKind::kRunsNarrow: {
      const bool narrow = view.kind == WireKind::kRunsNarrow;
      std::int64_t cursor = 0;
      for (const WireRun& run : view.runs) {
        for (std::uint32_t k = 0; k < run.length; ++k, ++cursor) {
          out[run.offset + k] = narrow ? load_narrow(view.values, cursor)
                                       : load_wide(view.values, cursor);
        }
      }
      break;
    }
  }
  return out;
}

std::int64_t combine_chunk(AggregateOp op, std::span<Value> dst,
                           std::span<const std::byte> payload,
                           ThreadPool* pool, int max_workers) {
  const auto n = static_cast<std::int64_t>(dst.size());
  const WireChunkView view = parse_chunk(payload, n);
  Value* out = dst.data();

  // Every destination cell receives at most one combine, and cells are
  // disjoint across stripes, so the result is bit-identical for any worker
  // count and any stripe execution order.
  if (view.kind == WireKind::kRaw || view.kind == WireKind::kDenseNarrow) {
    const bool narrow = view.kind == WireKind::kDenseNarrow;
    const auto body = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        combine(op, out[i],
                narrow ? load_narrow(view.values, i)
                       : load_wide(view.values, i));
      }
    };
    if (pool != nullptr && n >= 2 * kMinCellsPerCombineStripe) {
      pool->parallel_for(0, n, kMinCellsPerCombineStripe, body, max_workers);
    } else {
      body(0, n);
    }
    return n;
  }

  const bool narrow = view.kind == WireKind::kRunsNarrow;
  // Value-section start index of each run (prefix sum of lengths).
  std::vector<std::int64_t> starts(view.runs.size() + 1, 0);
  for (std::size_t i = 0; i < view.runs.size(); ++i) {
    starts[i + 1] = starts[i] + static_cast<std::int64_t>(view.runs[i].length);
  }
  const auto body = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t ri = lo; ri < hi; ++ri) {
      const WireRun& run = view.runs[static_cast<std::size_t>(ri)];
      std::int64_t cursor = starts[static_cast<std::size_t>(ri)];
      for (std::uint32_t k = 0; k < run.length; ++k, ++cursor) {
        combine(op, out[run.offset + k],
                narrow ? load_narrow(view.values, cursor)
                       : load_wide(view.values, cursor));
      }
    }
  };
  const auto run_count = static_cast<std::int64_t>(view.runs.size());
  if (pool != nullptr && (view.value_count >= 2 * kMinCellsPerCombineStripe ||
                          run_count >= 2 * kMinRunsPerCombineStripe)) {
    pool->parallel_for(0, run_count, kMinRunsPerCombineStripe, body,
                       max_workers);
  } else {
    body(0, run_count);
  }
  return view.value_count;
}

}  // namespace cubist
