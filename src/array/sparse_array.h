// SparseArray: the paper's chunk-offset compressed sparse format (§6).
//
// The array is divided into chunks. Each chunk stores only its non-zero
// cells, as parallel vectors of (offset within the chunk, value); the offset
// is the row-major linear index relative to the chunk's own extents. This is
// exactly the "chunk-offset compression" of Zhao et al. that the paper's
// experiments use for the input dataset.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "array/dense_array.h"
#include "array/shape.h"

namespace cubist {

class SparseArray {
 public:
  /// Offsets within a chunk are 32-bit: chunk volume must stay < 2^32.
  using Offset = std::uint32_t;

  /// An empty sparse array with the given global shape, chunked by
  /// `chunk_extents` (clipped at the array boundary).
  SparseArray(Shape shape, std::vector<std::int64_t> chunk_extents);

  /// Compresses a dense array; cells equal to 0 are dropped.
  static SparseArray from_dense(const DenseArray& dense,
                                std::vector<std::int64_t> chunk_extents);

  const Shape& shape() const { return shape_; }
  int ndim() const { return shape_.ndim(); }
  const std::vector<std::int64_t>& chunk_extents() const {
    return chunk_extents_;
  }
  /// Shape of the chunk grid (number of chunks along each dimension).
  const Shape& chunk_grid() const { return chunk_grid_; }
  std::int64_t num_chunks() const { return chunk_grid_.size(); }

  std::int64_t nnz() const { return nnz_; }
  /// Fraction of cells that are non-zero (the paper's "sparsity" knob).
  double density() const {
    return static_cast<double>(nnz_) / static_cast<double>(shape_.size());
  }
  /// Heap footprint: offsets + values.
  std::int64_t bytes() const {
    return nnz_ * static_cast<std::int64_t>(sizeof(Offset) + sizeof(Value));
  }

  /// Appends a non-zero cell. Within one chunk, cells must arrive in
  /// ascending offset order (global row-major iteration guarantees this);
  /// `finalize()` verifies. Zero values are dropped silently.
  void push(const std::int64_t* index, Value value);
  void push(const std::vector<std::int64_t>& index, Value value) {
    CUBIST_CHECK(static_cast<int>(index.size()) == ndim(),
                 "index rank mismatch");
    push(index.data(), value);
  }

  /// Validates per-chunk offset ordering; call once after the last push().
  void finalize();

  /// Invokes fn(index, value) for every non-zero, in chunk order.
  /// `index` points at ndim() global coordinates, valid during the call.
  void for_each_nonzero(
      const std::function<void(const std::int64_t*, Value)>& fn) const;

  /// Decompresses to a dense array (test/debug aid).
  DenseArray to_dense() const;

  // --- chunk-level access, used by the fast aggregation kernel ---

  /// Extents of the chunk at chunk-grid coordinates `chunk_coords`
  /// (interior chunks get `chunk_extents()`, boundary chunks are clipped).
  std::vector<std::int64_t> chunk_shape_at(
      const std::vector<std::int64_t>& chunk_coords) const;

  /// Global coordinates of the chunk's origin cell.
  std::vector<std::int64_t> chunk_base(
      const std::vector<std::int64_t>& chunk_coords) const;

  /// True if the chunk has the full `chunk_extents()` shape.
  bool chunk_is_full(const std::vector<std::int64_t>& chunk_coords) const;

  std::span<const Offset> chunk_offsets(std::int64_t chunk_id) const {
    return chunks_[static_cast<std::size_t>(chunk_id)].offsets;
  }
  std::span<const Value> chunk_values(std::int64_t chunk_id) const {
    return chunks_[static_cast<std::size_t>(chunk_id)].values;
  }

 private:
  struct Chunk {
    std::vector<Offset> offsets;
    std::vector<Value> values;
  };

  /// Chunk grid coordinates and within-chunk offset of a global index.
  std::int64_t locate(const std::int64_t* index, Offset* offset_out) const;

  Shape shape_;
  std::vector<std::int64_t> chunk_extents_;
  Shape chunk_grid_;
  std::vector<Chunk> chunks_;
  std::int64_t nnz_ = 0;
  bool finalized_ = false;
};

}  // namespace cubist
