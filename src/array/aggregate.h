// Simultaneous multi-way aggregation kernels.
//
// The central operation of cube construction with maximal cache and memory
// reuse: ONE scan of a parent array updates ALL of its children at once
// (paper §1 "Cache and Memory Reuse"). A child is the parent with exactly
// one dimension aggregated away (summed over).
//
// Kernels are expressed in *position space*: a target names the position of
// the aggregated dimension within the parent's dimension list. The lattice
// layer maps DimSets to positions.
#pragma once

#include <cstdint>
#include <span>

#include "array/dense_array.h"
#include "array/sparse_array.h"

namespace cubist {

/// One child to produce during a parent scan.
struct AggregationTarget {
  /// Position (0-based, within the parent's dimension list) of the
  /// dimension summed away.
  int aggregated_pos;
  /// Output array; its shape must equal parent.shape().without_dim(pos).
  /// Cells are accumulated into (+=), so callers can aggregate several
  /// parents into one child if they wish; the cube builder zero-fills.
  DenseArray* child;
};

/// Work accounting returned by the kernels; feeds the virtual-time model.
struct AggregationStats {
  /// Cells of the parent visited (dense: shape.size(); sparse: nnz).
  std::int64_t cells_scanned = 0;
  /// Individual `child += value` updates performed (= cells * #targets).
  std::int64_t updates = 0;

  AggregationStats& operator+=(const AggregationStats& o) {
    cells_scanned += o.cells_scanned;
    updates += o.updates;
    return *this;
  }
};

/// Scans a dense parent once, accumulating every target simultaneously.
AggregationStats aggregate_children(const DenseArray& parent,
                                    std::span<const AggregationTarget> targets);

/// Scans a chunk-offset sparse parent once, accumulating every target.
/// Uses a per-chunk-shape offset table so interior chunks cost one lookup
/// and one add per (non-zero, target).
AggregationStats aggregate_children(const SparseArray& parent,
                                    std::span<const AggregationTarget> targets);

/// Generic projection: aggregates away every parent dimension NOT listed
/// in `kept_positions` (ascending positions into the parent's dimension
/// list) in a single scan. `out` must have the kept extents and is
/// accumulated into. Used by the naive all-from-root baseline and the
/// reference verifier — deliberately an independent code path from the
/// multi-way kernels.
AggregationStats project(const DenseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out);
AggregationStats project(const SparseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out);

}  // namespace cubist
