// Simultaneous multi-way aggregation kernels.
//
// The central operation of cube construction with maximal cache and memory
// reuse: ONE scan of a parent array updates ALL of its children at once
// (paper §1 "Cache and Memory Reuse"). A child is the parent with exactly
// one dimension aggregated away (summed over).
//
// Kernels are expressed in *position space*: a target names the position of
// the aggregated dimension within the parent's dimension list. The lattice
// layer maps DimSets to positions.
//
// Large scans run on the shared ThreadPool as deterministic stripes (see
// docs/PERFORMANCE.md): the parent is cut into cache-sized stripes whose
// geometry depends only on the array shape — never on the thread count —
// children that alias across stripes get stripe-private accumulators that
// are merged in fixed stripe order, so the result is bit-identical for any
// CUBIST_THREADS setting.
#pragma once

#include <cstdint>
#include <span>

#include "array/dense_array.h"
#include "array/sparse_array.h"

namespace cubist {

class ThreadPool;

/// One child to produce during a parent scan.
struct AggregationTarget {
  /// Position (0-based, within the parent's dimension list) of the
  /// dimension summed away.
  int aggregated_pos;
  /// Output array; its shape must equal parent.shape().without_dim(pos).
  /// Cells are accumulated into (+=), so callers can aggregate several
  /// parents into one child if they wish; the cube builder zero-fills.
  DenseArray* child;
};

/// Work accounting returned by the kernels; feeds the virtual-time model.
struct AggregationStats {
  /// Cells of the parent visited (dense: shape.size(); sparse: nnz).
  std::int64_t cells_scanned = 0;
  /// Individual `child += value` updates performed (= cells * #targets).
  std::int64_t updates = 0;
  /// Transient stripe-private accumulator bytes this scan allocated
  /// (0 for single-stripe scans). A high-water mark, not a sum: merging
  /// stats keeps the max, because the scratch of one scan is released
  /// before the next scan starts.
  std::int64_t scratch_bytes = 0;

  AggregationStats& operator+=(const AggregationStats& o) {
    cells_scanned += o.cells_scanned;
    updates += o.updates;
    scratch_bytes = scratch_bytes > o.scratch_bytes ? scratch_bytes
                                                    : o.scratch_bytes;
    return *this;
  }
};

/// Execution knobs of one scan (defaults reproduce the global policy).
struct AggregateOptions {
  /// Pool to stripe the scan over; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Extra cap on the scan's concurrency on top of the pool's own
  /// size() / active_ranks() budget (0 = no extra cap). The parallel
  /// builder sets this to its per-rank worker budget.
  int max_workers = 0;
};

// --- deterministic stripe policy (shared by the kernels, the static
// --- memory analysis, and the tests; see docs/PERFORMANCE.md) ---

/// Most stripes a scan is ever cut into (the parallelism ceiling).
inline constexpr std::int64_t kMaxScanStripes = 16;
/// Scans smaller than one stripe of this many cells stay single-stripe.
inline constexpr std::int64_t kMinCellsPerStripe = 1 << 13;
/// Hard cap on the transient private-accumulator bytes of one scan; the
/// stripe count shrinks (ultimately to 1 = scalar) to respect it.
inline constexpr std::int64_t kScanScratchBudgetBytes =
    std::int64_t{64} << 20;

/// Deterministic decomposition of one scan: a function of shapes (and for
/// sparse scans the nonzero count) only — never of the thread count.
struct StripePlan {
  /// Number of stripes; 1 = scalar single-thread scan, no scratch.
  std::int64_t num_stripes = 1;
  /// Units per stripe (dense: parent rows; sparse: chunk-grid chunks).
  std::int64_t stripe_len = 0;
  /// Per target: does its child alias across stripes (and therefore need
  /// stripe-private accumulators)? Parallel stripes write direct,
  /// non-aliased targets concurrently into disjoint child regions.
  std::vector<std::uint8_t> aliased;
  /// num_stripes * sum of aliased child bytes (0 when num_stripes == 1).
  std::int64_t scratch_bytes = 0;
};

/// Stripe plan for a dense scan of `parent` over the given aggregated
/// positions. Units are parent rows (the fastest-varying dimension stays
/// whole so the inner loops remain contiguous).
StripePlan plan_dense_scan(const Shape& parent,
                           std::span<const int> aggregated_positions);

/// Stripe plan for a sparse chunk-offset scan; units are chunks of
/// `chunk_grid`. `work_cells` sizes the stripes (the kernel passes nnz;
/// pass parent.size() for a data-independent worst case).
StripePlan plan_sparse_scan(const Shape& parent, const Shape& chunk_grid,
                            std::span<const int> aggregated_positions,
                            std::int64_t work_cells);

/// Upper bound on the transient private-accumulator bytes ANY scan of
/// `parent` over these positions may allocate, independent of chunk
/// layout, nonzero count, and thread count:
/// min(kScanScratchBudgetBytes, kMaxScanStripes * sum of child bytes).
/// The static schedule analysis charges this per planned scan
/// (`bytes_per_cell` mirrors ScheduleSpec's knob; the kernels use
/// sizeof(Value)).
std::int64_t scan_scratch_bound(
    const Shape& parent, std::span<const int> aggregated_positions,
    std::int64_t bytes_per_cell = static_cast<std::int64_t>(sizeof(Value)));

/// Scans a dense parent once, accumulating every target simultaneously.
/// Striped over the pool per plan_dense_scan; bit-identical results for
/// any pool size.
AggregationStats aggregate_children(const DenseArray& parent,
                                    std::span<const AggregationTarget> targets,
                                    const AggregateOptions& options = {});

/// Scans a chunk-offset sparse parent once, accumulating every target.
/// Uses a per-chunk-shape offset table so interior chunks cost one lookup
/// and one add per (non-zero, target). Striped over whole chunks per
/// plan_sparse_scan; bit-identical results for any pool size.
AggregationStats aggregate_children(const SparseArray& parent,
                                    std::span<const AggregationTarget> targets,
                                    const AggregateOptions& options = {});

/// Generic projection: aggregates away every parent dimension NOT listed
/// in `kept_positions` (ascending positions into the parent's dimension
/// list) in a single scan. `out` must have the kept extents and is
/// accumulated into. Used by the naive all-from-root baseline and the
/// reference verifier — deliberately an independent code path from the
/// multi-way kernels (and deliberately scalar).
AggregationStats project(const DenseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out);
AggregationStats project(const SparseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out);

}  // namespace cubist
