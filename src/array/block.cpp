#include "array/block.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace cubist {

BlockRange::BlockRange(std::vector<std::int64_t> lo,
                       std::vector<std::int64_t> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  CUBIST_CHECK(lo_.size() == hi_.size(), "block rank mismatch");
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    CUBIST_CHECK(lo_[d] >= 0 && lo_[d] < hi_[d],
                 "empty or negative block range in dim " << d);
  }
}

std::vector<std::int64_t> BlockRange::extents() const {
  std::vector<std::int64_t> out(lo_.size());
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    out[d] = hi_[d] - lo_[d];
  }
  return out;
}

std::int64_t BlockRange::size() const {
  std::int64_t product = 1;
  for (int d = 0; d < ndim(); ++d) {
    product *= extent(d);
  }
  return product;
}

bool BlockRange::contains(const std::int64_t* global_index) const {
  for (int d = 0; d < ndim(); ++d) {
    if (global_index[d] < lo_[d] || global_index[d] >= hi_[d]) {
      return false;
    }
  }
  return true;
}

void BlockRange::to_local(const std::int64_t* global_index,
                          std::int64_t* local_index) const {
  for (int d = 0; d < ndim(); ++d) {
    CUBIST_DCHECK(global_index[d] >= lo_[d] && global_index[d] < hi_[d],
                  "global index outside block in dim " << d);
    local_index[d] = global_index[d] - lo_[d];
  }
}

std::string BlockRange::to_string() const {
  std::ostringstream out;
  for (int d = 0; d < ndim(); ++d) {
    if (d) out << 'x';
    out << '[' << lo_[d] << ',' << hi_[d] << ')';
  }
  return out.str();
}

std::pair<std::int64_t, std::int64_t> split_range(std::int64_t extent,
                                                  std::int64_t parts,
                                                  std::int64_t part) {
  CUBIST_CHECK(parts > 0 && part >= 0 && part < parts,
               "bad split: part " << part << " of " << parts);
  CUBIST_CHECK(extent >= parts,
               "cannot split extent " << extent << " into " << parts
                                      << " non-empty pieces");
  const std::int64_t base = extent / parts;
  const std::int64_t remainder = extent % parts;
  const std::int64_t lo = part * base + std::min(part, remainder);
  const std::int64_t hi = lo + base + (part < remainder ? 1 : 0);
  return {lo, hi};
}

BlockRange block_for(const std::vector<std::int64_t>& global_extents,
                     const std::vector<std::int64_t>& splits,
                     const std::vector<std::int64_t>& coords) {
  CUBIST_CHECK(global_extents.size() == splits.size() &&
                   splits.size() == coords.size(),
               "rank mismatch");
  std::vector<std::int64_t> lo(global_extents.size());
  std::vector<std::int64_t> hi(global_extents.size());
  for (std::size_t d = 0; d < global_extents.size(); ++d) {
    auto [lo_d, hi_d] = split_range(global_extents[d], splits[d], coords[d]);
    lo[d] = lo_d;
    hi[d] = hi_d;
  }
  return BlockRange(std::move(lo), std::move(hi));
}

}  // namespace cubist
