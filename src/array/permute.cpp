#include "array/permute.h"

#include "common/error.h"

namespace cubist {
namespace {

void check_permutation(const std::vector<int>& perm, int ndim) {
  CUBIST_CHECK(static_cast<int>(perm.size()) == ndim,
               "permutation rank mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(ndim), false);
  for (int d : perm) {
    CUBIST_CHECK(d >= 0 && d < ndim && !seen[static_cast<std::size_t>(d)],
                 "not a permutation");
    seen[static_cast<std::size_t>(d)] = true;
  }
}

std::vector<std::int64_t> permuted_extents(const Shape& shape,
                                           const std::vector<int>& perm) {
  std::vector<std::int64_t> extents(perm.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    extents[pos] = shape.extent(perm[pos]);
  }
  return extents;
}

}  // namespace

DenseArray permute_dims(const DenseArray& input,
                        const std::vector<int>& perm) {
  const int m = input.ndim();
  check_permutation(perm, m);
  DenseArray out{Shape{permuted_extents(input.shape(), perm)}};
  std::vector<std::int64_t> src(static_cast<std::size_t>(m));
  std::vector<std::int64_t> dst(static_cast<std::size_t>(m));
  for (std::int64_t linear = 0; linear < input.size(); ++linear) {
    input.shape().unravel(linear, src.data());
    for (int pos = 0; pos < m; ++pos) {
      dst[pos] = src[perm[pos]];
    }
    out[out.shape().linear_index(dst.data())] = input[linear];
  }
  return out;
}

SparseArray permute_dims(const SparseArray& input,
                         const std::vector<int>& perm,
                         std::vector<std::int64_t> chunk_extents) {
  const int m = input.ndim();
  check_permutation(perm, m);
  if (chunk_extents.empty()) {
    chunk_extents.resize(static_cast<std::size_t>(m));
    for (int pos = 0; pos < m; ++pos) {
      chunk_extents[pos] = input.chunk_extents()[perm[pos]];
    }
  }
  SparseArray out{Shape{permuted_extents(input.shape(), perm)},
                  std::move(chunk_extents)};
  std::vector<std::int64_t> dst(static_cast<std::size_t>(m));
  input.for_each_nonzero([&](const std::int64_t* src, Value value) {
    for (int pos = 0; pos < m; ++pos) {
      dst[pos] = src[perm[pos]];
    }
    out.push(dst.data(), value);
  });
  out.finalize();
  return out;
}

std::vector<std::int64_t> permute_coords(
    const std::vector<std::int64_t>& coords, const std::vector<int>& perm) {
  check_permutation(perm, static_cast<int>(coords.size()));
  std::vector<std::int64_t> out(coords.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) {
    out[pos] = coords[perm[pos]];
  }
  return out;
}

}  // namespace cubist
