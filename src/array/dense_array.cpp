#include "array/dense_array.h"

namespace cubist {

void DenseArray::accumulate(const DenseArray& other) {
  CUBIST_CHECK(shape_ == other.shape_,
               "accumulate shape mismatch: " << shape_.to_string() << " vs "
                                             << other.shape_.to_string());
  const Value* src = other.data();
  Value* dst = data();
  const std::int64_t n = size();
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] += src[i];
  }
}

Value DenseArray::total() const {
  Value sum{0};
  for (std::int64_t i = 0; i < size(); ++i) {
    sum += data_[static_cast<std::size_t>(i)];
  }
  return sum;
}

}  // namespace cubist
