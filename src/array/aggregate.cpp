#include "array/aggregate.h"

#include <algorithm>
#include <vector>

#include "common/mathutil.h"
#include "common/thread_pool.h"

namespace cubist {
namespace {

// Child-array stride of each parent dimension, 0 for the aggregated one.
// The projected (child) linear index of a parent multi-index `idx` is then
// sum_d idx[d] * stride[d].
std::vector<std::int64_t> projection_strides(const Shape& parent_shape,
                                             const AggregationTarget& target) {
  const int m = parent_shape.ndim();
  CUBIST_CHECK(target.aggregated_pos >= 0 && target.aggregated_pos < m,
               "aggregated_pos out of range");
  CUBIST_CHECK(target.child != nullptr, "null child array");
  CUBIST_CHECK(target.child->shape() ==
                   parent_shape.without_dim(target.aggregated_pos),
               "child shape mismatch for aggregated_pos "
                   << target.aggregated_pos);
  std::vector<std::int64_t> strides(static_cast<std::size_t>(m), 0);
  int child_dim = 0;
  for (int d = 0; d < m; ++d) {
    if (d == target.aggregated_pos) continue;
    strides[d] = target.child->shape().stride(child_dim);
    ++child_dim;
  }
  return strides;
}

std::int64_t child_bytes_for(const Shape& parent, int aggregated_pos) {
  return parent.size() / parent.extent(aggregated_pos) *
         static_cast<std::int64_t>(sizeof(Value));
}

/// Shared stripe planner over an iteration space of `units` row-major
/// units. `alias_block[c]` is the aligned run length (in units) within
/// which all contributions to one cell/region of child c fall: stripes
/// whose length is a multiple of it write disjoint child regions. Walks
/// the candidate stripe counts downward until the private-accumulator
/// scratch fits the budget; everything here is a function of shapes (and
/// `work_cells`), never of the thread count.
StripePlan plan_stripes(std::int64_t units, const Shape& space,
                        std::span<const std::int64_t> alias_block,
                        std::span<const std::int64_t> child_bytes,
                        std::int64_t work_cells) {
  StripePlan plan;
  plan.stripe_len = std::max<std::int64_t>(units, 1);
  plan.aliased.assign(alias_block.size(), 0);
  const std::int64_t desired =
      std::min(kMaxScanStripes, work_cells / kMinCellsPerStripe);
  if (units <= 1 || desired <= 1) return plan;
  for (std::int64_t g = std::min(desired, units); g >= 2; --g) {
    const std::int64_t raw = ceil_div(units, g);
    // Align the stripe length to the largest iteration-space stride that
    // fits, so as many targets as possible become alias-free.
    std::int64_t align = 1;
    for (int d = 0; d < space.ndim(); ++d) {
      if (space.stride(d) <= raw) align = std::max(align, space.stride(d));
    }
    const std::int64_t len = ceil_div(raw, align) * align;
    const std::int64_t stripes = ceil_div(units, len);
    if (stripes <= 1) continue;
    std::int64_t scratch = 0;
    for (std::size_t c = 0; c < alias_block.size(); ++c) {
      if (len % alias_block[c] != 0) scratch += child_bytes[c];
    }
    scratch *= stripes;
    if (scratch > kScanScratchBudgetBytes) continue;
    plan.num_stripes = stripes;
    plan.stripe_len = len;
    for (std::size_t c = 0; c < alias_block.size(); ++c) {
      plan.aliased[c] = len % alias_block[c] != 0 ? 1 : 0;
    }
    plan.scratch_bytes = scratch;
    return plan;
  }
  return plan;
}

ThreadPool& pool_of(const AggregateOptions& options) {
  return options.pool != nullptr ? *options.pool : ThreadPool::global();
}

/// Sums `bufs` into `child`, cell by cell, in ascending stripe order —
/// the fixed merge order that makes striped scans bit-identical for any
/// thread count. Parallel over disjoint cell ranges.
void merge_stripe_buffers(DenseArray* child,
                          const std::vector<DenseArray>& bufs,
                          const AggregateOptions& options) {
  const std::int64_t n = child->size();
  Value* out = child->data();
  std::vector<const Value*> srcs;
  srcs.reserve(bufs.size());
  for (const DenseArray& buf : bufs) srcs.push_back(buf.data());
  pool_of(options).parallel_for(
      0, n, std::int64_t{1} << 15,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          Value acc = 0;
          for (const Value* src : srcs) acc += src[i];
          out[i] += acc;
        }
      },
      options.max_workers);
}

/// One target's state during a dense row scan.
struct ScanTarget {
  /// Accumulation base: the child array or a stripe-private buffer
  /// (same indexing either way — private buffers clone the child shape).
  Value* base = nullptr;
  /// Child stride per parent dimension (0 for the aggregated one).
  const std::int64_t* strides = nullptr;
  /// Projected child index of the current row's first cell.
  std::int64_t row_start = 0;
};

/// Scans parent rows [row_begin, row_end), accumulating every target.
/// Row-major row order with a fixed per-row target order, so the
/// arithmetic is independent of how rows are striped across threads
/// (per child cell, all contributions come from one stripe, in row
/// order). The inner loops are specialized for the dominant cases: a
/// row-sum reduction for the innermost-dimension target (delta 0) and
/// contiguous vector adds for every other target (delta 1), issued
/// jointly for up to three targets so the parent row is read once.
void scan_dense_rows(const Value* parent_data, const Shape& outer,
                     std::int64_t inner, std::int64_t row_begin,
                     std::int64_t row_end, std::vector<ScanTarget>& targets) {
  const int od = outer.ndim();
  const int m = od + 1;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(od), 0);
  outer.unravel(row_begin, idx.data());
  for (ScanTarget& t : targets) {
    t.row_start = 0;
    for (int d = 0; d < od; ++d) t.row_start += idx[d] * t.strides[d];
  }
  // Split targets by their inner-dimension delta: 0 = the aggregated
  // dimension is the innermost (row reduction), 1 = contiguous row add.
  std::vector<ScanTarget*> reduce_targets;
  std::vector<ScanTarget*> vec_targets;
  for (ScanTarget& t : targets) {
    const std::int64_t delta = t.strides[m - 1];
    CUBIST_DCHECK(delta == 0 || delta == 1,
                  "inner-dimension child stride must be 0 or 1, got "
                      << delta);
    (delta == 0 ? reduce_targets : vec_targets).push_back(&t);
  }

  const Value* cell = parent_data + row_begin * inner;
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    const Value* in = cell;
    if (!reduce_targets.empty()) {
      Value sum = 0;  // fixed left-to-right order: deterministic
      for (std::int64_t i = 0; i < inner; ++i) sum += in[i];
      for (ScanTarget* t : reduce_targets) t->base[t->row_start] += sum;
    }
    switch (vec_targets.size()) {
      case 0:
        break;
      case 1: {
        Value* o0 = vec_targets[0]->base + vec_targets[0]->row_start;
        for (std::int64_t i = 0; i < inner; ++i) o0[i] += in[i];
        break;
      }
      case 2: {
        Value* o0 = vec_targets[0]->base + vec_targets[0]->row_start;
        Value* o1 = vec_targets[1]->base + vec_targets[1]->row_start;
        for (std::int64_t i = 0; i < inner; ++i) {
          const Value v = in[i];
          o0[i] += v;
          o1[i] += v;
        }
        break;
      }
      case 3: {
        Value* o0 = vec_targets[0]->base + vec_targets[0]->row_start;
        Value* o1 = vec_targets[1]->base + vec_targets[1]->row_start;
        Value* o2 = vec_targets[2]->base + vec_targets[2]->row_start;
        for (std::int64_t i = 0; i < inner; ++i) {
          const Value v = in[i];
          o0[i] += v;
          o1[i] += v;
          o2[i] += v;
        }
        break;
      }
      default:
        for (ScanTarget* t : vec_targets) {
          Value* out = t->base + t->row_start;
          for (std::int64_t i = 0; i < inner; ++i) out[i] += in[i];
        }
        break;
    }
    cell += inner;
    // Odometer over the outer dimensions, updating each row start.
    for (int d = od - 1; d >= 0; --d) {
      ++idx[d];
      if (idx[d] < outer.extent(d)) {
        for (ScanTarget& t : targets) t.row_start += t.strides[d];
        break;
      }
      idx[d] = 0;
      for (ScanTarget& t : targets) {
        t.row_start -= (outer.extent(d) - 1) * t.strides[d];
      }
    }
  }
}

Shape outer_shape(const Shape& parent) {
  std::vector<std::int64_t> extents(parent.extents().begin(),
                                    parent.extents().end());
  extents.pop_back();
  return Shape{extents};
}

std::vector<int> target_positions(std::span<const AggregationTarget> targets) {
  std::vector<int> positions;
  positions.reserve(targets.size());
  for (const AggregationTarget& target : targets) {
    positions.push_back(target.aggregated_pos);
  }
  return positions;
}

}  // namespace

StripePlan plan_dense_scan(const Shape& parent,
                           std::span<const int> aggregated_positions) {
  const int m = parent.ndim();
  StripePlan single;
  single.aliased.assign(aggregated_positions.size(), 0);
  single.stripe_len = 1;
  if (m <= 1) return single;
  const std::int64_t inner = parent.extent(m - 1);
  const std::int64_t rows = parent.size() / std::max<std::int64_t>(inner, 1);
  single.stripe_len = std::max<std::int64_t>(rows, 1);
  if (rows <= 1 || parent.size() == 0) return single;
  const Shape outer = outer_shape(parent);
  std::vector<std::int64_t> alias_block;
  std::vector<std::int64_t> child_bytes;
  for (const int a : aggregated_positions) {
    CUBIST_CHECK(a >= 0 && a < m, "aggregated position out of range");
    // Rows feeding one child cell: exactly one row when the innermost
    // dimension is aggregated; otherwise an aligned run of rows spanning
    // the aggregated dimension's row stride.
    if (a == m - 1) {
      alias_block.push_back(1);
    } else if (a == 0) {
      alias_block.push_back(rows);
    } else {
      alias_block.push_back(outer.stride(a - 1));
    }
    child_bytes.push_back(child_bytes_for(parent, a));
  }
  return plan_stripes(rows, outer, alias_block, child_bytes, parent.size());
}

StripePlan plan_sparse_scan(const Shape& parent, const Shape& chunk_grid,
                            std::span<const int> aggregated_positions,
                            std::int64_t work_cells) {
  const int m = parent.ndim();
  CUBIST_CHECK(chunk_grid.ndim() == m, "chunk grid rank mismatch");
  const std::int64_t units = chunk_grid.size();
  StripePlan single;
  single.aliased.assign(aggregated_positions.size(), 0);
  single.stripe_len = std::max<std::int64_t>(units, 1);
  if (units <= 1) return single;
  std::vector<std::int64_t> alias_block;
  std::vector<std::int64_t> child_bytes;
  for (const int a : aggregated_positions) {
    CUBIST_CHECK(a >= 0 && a < m, "aggregated position out of range");
    // Chunks feeding one child region differ only in chunk coordinate a:
    // an aligned run of extent(a) * stride(a) = stride(a - 1) chunk ids.
    alias_block.push_back(a == 0 ? units : chunk_grid.stride(a - 1));
    child_bytes.push_back(child_bytes_for(parent, a));
  }
  return plan_stripes(units, chunk_grid, alias_block, child_bytes,
                      work_cells);
}

std::int64_t scan_scratch_bound(const Shape& parent,
                                std::span<const int> aggregated_positions,
                                std::int64_t bytes_per_cell) {
  CUBIST_CHECK(bytes_per_cell > 0, "bytes_per_cell must be positive");
  std::int64_t total_child_bytes = 0;
  for (const int a : aggregated_positions) {
    CUBIST_CHECK(a >= 0 && a < parent.ndim(),
                 "aggregated position out of range");
    total_child_bytes += parent.size() / parent.extent(a) * bytes_per_cell;
  }
  return std::min(kScanScratchBudgetBytes,
                  kMaxScanStripes * total_child_bytes);
}

AggregationStats aggregate_children(const DenseArray& parent,
                                    std::span<const AggregationTarget> targets,
                                    const AggregateOptions& options) {
  const int m = parent.ndim();
  const std::size_t num_targets = targets.size();
  if (num_targets == 0) return {};
  CUBIST_CHECK(m >= 1, "cannot aggregate a scalar parent");

  std::vector<std::vector<std::int64_t>> strides;
  strides.reserve(num_targets);
  for (const auto& target : targets) {
    strides.push_back(projection_strides(parent.shape(), target));
  }
  const std::vector<int> positions = target_positions(targets);
  const StripePlan plan = plan_dense_scan(parent.shape(), positions);

  const std::int64_t inner = parent.shape().extent(m - 1);
  const std::int64_t num_rows =
      parent.size() / std::max<std::int64_t>(inner, 1);
  const Shape outer = outer_shape(parent.shape());

  AggregationStats stats;
  stats.cells_scanned = parent.size();
  stats.updates = parent.size() * static_cast<std::int64_t>(num_targets);
  stats.scratch_bytes = plan.scratch_bytes;

  if (plan.num_stripes <= 1) {
    std::vector<ScanTarget> scan_targets(num_targets);
    for (std::size_t c = 0; c < num_targets; ++c) {
      scan_targets[c].base = targets[c].child->data();
      scan_targets[c].strides = strides[c].data();
    }
    scan_dense_rows(parent.data(), outer, inner, 0, num_rows, scan_targets);
    return stats;
  }

  // Stripe-private accumulators for children that alias across stripes.
  std::vector<std::vector<DenseArray>> scratch(num_targets);
  for (std::size_t c = 0; c < num_targets; ++c) {
    if (plan.aliased[c] == 0) continue;
    scratch[c].reserve(static_cast<std::size_t>(plan.num_stripes));
    for (std::int64_t s = 0; s < plan.num_stripes; ++s) {
      scratch[c].emplace_back(targets[c].child->shape());
    }
  }
  pool_of(options).parallel_for(
      0, plan.num_stripes, 1,
      [&](std::int64_t stripe_lo, std::int64_t stripe_hi) {
        for (std::int64_t s = stripe_lo; s < stripe_hi; ++s) {
          const std::int64_t r0 = s * plan.stripe_len;
          const std::int64_t r1 =
              std::min(num_rows, r0 + plan.stripe_len);
          std::vector<ScanTarget> scan_targets(num_targets);
          for (std::size_t c = 0; c < num_targets; ++c) {
            scan_targets[c].base =
                plan.aliased[c] != 0
                    ? scratch[c][static_cast<std::size_t>(s)].data()
                    : targets[c].child->data();
            scan_targets[c].strides = strides[c].data();
          }
          scan_dense_rows(parent.data(), outer, inner, r0, r1, scan_targets);
        }
      },
      options.max_workers);
  for (std::size_t c = 0; c < num_targets; ++c) {
    if (plan.aliased[c] != 0) {
      merge_stripe_buffers(targets[c].child, scratch[c], options);
    }
  }
  return stats;
}

namespace {

/// Scans sparse chunks [chunk_begin, chunk_end), accumulating every
/// target into `bases` (child arrays or stripe-private clones). Chunk
/// order and per-chunk nonzero order are fixed, so the arithmetic does
/// not depend on the striping.
void scan_sparse_chunks(
    const SparseArray& parent,
    const std::vector<std::vector<std::int64_t>>& strides, bool use_table,
    const std::vector<std::vector<std::int64_t>>& offset_table,
    std::int64_t chunk_begin, std::int64_t chunk_end,
    std::span<Value* const> bases) {
  const int m = parent.ndim();
  const std::size_t num_targets = strides.size();
  std::vector<std::int64_t> chunk_coords(static_cast<std::size_t>(m), 0);
  std::vector<std::int64_t> local(static_cast<std::size_t>(m), 0);
  std::vector<std::int64_t> base_ci(num_targets);

  for (std::int64_t chunk_id = chunk_begin; chunk_id < chunk_end;
       ++chunk_id) {
    const auto offsets = parent.chunk_offsets(chunk_id);
    if (offsets.empty()) continue;
    const auto values = parent.chunk_values(chunk_id);
    parent.chunk_grid().unravel(chunk_id, chunk_coords.data());
    const auto base = parent.chunk_base(chunk_coords);
    for (std::size_t c = 0; c < num_targets; ++c) {
      std::int64_t projected = 0;
      for (int d = 0; d < m; ++d) {
        projected += base[d] * strides[c][d];
      }
      base_ci[c] = projected;
    }

    if (use_table && parent.chunk_is_full(chunk_coords)) {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        const auto off = offsets[i];
        const Value v = values[i];
        for (std::size_t c = 0; c < num_targets; ++c) {
          bases[c][base_ci[c] + offset_table[c][off]] += v;
        }
      }
    } else {
      // Boundary chunk: clipped extents, decode offsets directly.
      const Shape local_shape{parent.chunk_shape_at(chunk_coords)};
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        local_shape.unravel(static_cast<std::int64_t>(offsets[i]),
                            local.data());
        const Value v = values[i];
        for (std::size_t c = 0; c < num_targets; ++c) {
          std::int64_t projected = base_ci[c];
          for (int d = 0; d < m; ++d) {
            projected += local[d] * strides[c][d];
          }
          bases[c][projected] += v;
        }
      }
    }
  }
}

}  // namespace

AggregationStats aggregate_children(const SparseArray& parent,
                                    std::span<const AggregationTarget> targets,
                                    const AggregateOptions& options) {
  const int m = parent.ndim();
  const std::size_t num_targets = targets.size();
  if (num_targets == 0) return {};
  CUBIST_CHECK(m >= 1, "cannot aggregate a scalar parent");

  std::vector<std::vector<std::int64_t>> strides;
  strides.reserve(num_targets);
  for (const auto& target : targets) {
    strides.push_back(projection_strides(parent.shape(), target));
  }

  // Fast path: every interior chunk shares the same shape, so the map
  // (within-chunk offset) -> (child index contribution) is chunk-invariant.
  // Build it once per target; interior non-zeros then cost one table lookup
  // plus one add per target. Only worthwhile (and only affordable) for
  // reasonably small chunks — past the threshold every chunk takes the
  // decode path instead of allocating a giant table. The table is integer
  // data, so its construction parallelizes without ordering concerns.
  constexpr std::int64_t kMaxTableVolume = std::int64_t{1} << 22;
  const Shape full_chunk_shape{parent.chunk_extents()};
  const std::int64_t full_volume = full_chunk_shape.size();
  const bool use_table = full_volume <= kMaxTableVolume;
  std::vector<std::vector<std::int64_t>> offset_table(num_targets);
  if (use_table) {
    for (std::size_t c = 0; c < num_targets; ++c) {
      offset_table[c].resize(static_cast<std::size_t>(full_volume));
    }
    pool_of(options).parallel_for(
        0, full_volume, std::int64_t{1} << 14,
        [&](std::int64_t lo, std::int64_t hi) {
          std::vector<std::int64_t> local(static_cast<std::size_t>(m), 0);
          for (std::int64_t off = lo; off < hi; ++off) {
            full_chunk_shape.unravel(off, local.data());
            for (std::size_t c = 0; c < num_targets; ++c) {
              std::int64_t projected = 0;
              for (int d = 0; d < m; ++d) {
                projected += local[d] * strides[c][d];
              }
              offset_table[c][static_cast<std::size_t>(off)] = projected;
            }
          }
        },
        options.max_workers);
  }

  const std::vector<int> positions = target_positions(targets);
  const StripePlan plan = plan_sparse_scan(parent.shape(),
                                           parent.chunk_grid(), positions,
                                           parent.nnz());
  AggregationStats stats;
  stats.cells_scanned = parent.nnz();
  stats.updates =
      stats.cells_scanned * static_cast<std::int64_t>(num_targets);
  stats.scratch_bytes = plan.scratch_bytes;

  if (plan.num_stripes <= 1) {
    std::vector<Value*> bases(num_targets);
    for (std::size_t c = 0; c < num_targets; ++c) {
      bases[c] = targets[c].child->data();
    }
    scan_sparse_chunks(parent, strides, use_table, offset_table, 0,
                       parent.num_chunks(), bases);
    return stats;
  }

  std::vector<std::vector<DenseArray>> scratch(num_targets);
  for (std::size_t c = 0; c < num_targets; ++c) {
    if (plan.aliased[c] == 0) continue;
    scratch[c].reserve(static_cast<std::size_t>(plan.num_stripes));
    for (std::int64_t s = 0; s < plan.num_stripes; ++s) {
      scratch[c].emplace_back(targets[c].child->shape());
    }
  }
  pool_of(options).parallel_for(
      0, plan.num_stripes, 1,
      [&](std::int64_t stripe_lo, std::int64_t stripe_hi) {
        for (std::int64_t s = stripe_lo; s < stripe_hi; ++s) {
          const std::int64_t c0 = s * plan.stripe_len;
          const std::int64_t c1 =
              std::min(parent.num_chunks(), c0 + plan.stripe_len);
          std::vector<Value*> bases(num_targets);
          for (std::size_t c = 0; c < num_targets; ++c) {
            bases[c] = plan.aliased[c] != 0
                           ? scratch[c][static_cast<std::size_t>(s)].data()
                           : targets[c].child->data();
          }
          scan_sparse_chunks(parent, strides, use_table, offset_table, c0,
                             c1, bases);
        }
      },
      options.max_workers);
  for (std::size_t c = 0; c < num_targets; ++c) {
    if (plan.aliased[c] != 0) {
      merge_stripe_buffers(targets[c].child, scratch[c], options);
    }
  }
  return stats;
}

namespace {

// Out-array stride of each parent dimension for a multi-dim projection
// (0 for aggregated-away dimensions).
std::vector<std::int64_t> multi_projection_strides(
    const Shape& parent_shape, const std::vector<int>& kept_positions,
    const DenseArray& out) {
  const int m = parent_shape.ndim();
  std::vector<std::int64_t> expected;
  for (std::size_t i = 0; i < kept_positions.size(); ++i) {
    const int pos = kept_positions[i];
    CUBIST_CHECK(pos >= 0 && pos < m, "kept position out of range");
    CUBIST_CHECK(i == 0 || kept_positions[i - 1] < pos,
                 "kept positions must be strictly ascending");
    expected.push_back(parent_shape.extent(pos));
  }
  CUBIST_CHECK(out.shape().extents() == expected,
               "projection output shape mismatch");
  std::vector<std::int64_t> strides(static_cast<std::size_t>(m), 0);
  for (std::size_t i = 0; i < kept_positions.size(); ++i) {
    strides[kept_positions[i]] = out.shape().stride(static_cast<int>(i));
  }
  return strides;
}

}  // namespace

AggregationStats project(const DenseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out) {
  CUBIST_CHECK(out != nullptr, "null projection output");
  const std::vector<std::int64_t> strides =
      multi_projection_strides(parent.shape(), kept_positions, *out);
  const int m = parent.ndim();
  Value* dst = out->data();
  if (m == 0) {
    dst[0] += parent[0];
    return {1, 1, 0};
  }
  std::vector<std::int64_t> index(static_cast<std::size_t>(m), 0);
  for (std::int64_t linear = 0; linear < parent.size(); ++linear) {
    parent.shape().unravel(linear, index.data());
    std::int64_t projected = 0;
    for (int d = 0; d < m; ++d) {
      projected += index[d] * strides[d];
    }
    dst[projected] += parent[linear];
  }
  return {parent.size(), parent.size(), 0};
}

AggregationStats project(const SparseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out) {
  CUBIST_CHECK(out != nullptr, "null projection output");
  const std::vector<std::int64_t> strides =
      multi_projection_strides(parent.shape(), kept_positions, *out);
  const int m = parent.ndim();
  Value* dst = out->data();
  AggregationStats stats;
  parent.for_each_nonzero([&](const std::int64_t* index, Value value) {
    std::int64_t projected = 0;
    for (int d = 0; d < m; ++d) {
      projected += index[d] * strides[d];
    }
    dst[projected] += value;
    ++stats.cells_scanned;
    ++stats.updates;
  });
  return stats;
}

}  // namespace cubist
