#include "array/aggregate.h"

#include <vector>

namespace cubist {
namespace {

// Child-array stride of each parent dimension, 0 for the aggregated one.
// The projected (child) linear index of a parent multi-index `idx` is then
// sum_d idx[d] * stride[d].
std::vector<std::int64_t> projection_strides(const Shape& parent_shape,
                                             const AggregationTarget& target) {
  const int m = parent_shape.ndim();
  CUBIST_CHECK(target.aggregated_pos >= 0 && target.aggregated_pos < m,
               "aggregated_pos out of range");
  CUBIST_CHECK(target.child != nullptr, "null child array");
  CUBIST_CHECK(target.child->shape() ==
                   parent_shape.without_dim(target.aggregated_pos),
               "child shape mismatch for aggregated_pos "
                   << target.aggregated_pos);
  std::vector<std::int64_t> strides(static_cast<std::size_t>(m), 0);
  int child_dim = 0;
  for (int d = 0; d < m; ++d) {
    if (d == target.aggregated_pos) continue;
    strides[d] = target.child->shape().stride(child_dim);
    ++child_dim;
  }
  return strides;
}

}  // namespace

AggregationStats aggregate_children(
    const DenseArray& parent, std::span<const AggregationTarget> targets) {
  const int m = parent.ndim();
  const std::size_t num_targets = targets.size();
  if (num_targets == 0) return {};
  CUBIST_CHECK(m >= 1, "cannot aggregate a scalar parent");

  // Per-target projection strides and running child indices.
  std::vector<std::vector<std::int64_t>> strides;
  strides.reserve(num_targets);
  for (const auto& target : targets) {
    strides.push_back(projection_strides(parent.shape(), target));
  }
  std::vector<Value*> child_data(num_targets);
  std::vector<std::int64_t> last_delta(num_targets);
  std::vector<std::int64_t> row_start(num_targets, 0);
  for (std::size_t c = 0; c < num_targets; ++c) {
    child_data[c] = targets[c].child->data();
    last_delta[c] = strides[c][static_cast<std::size_t>(m - 1)];
  }

  const std::int64_t inner_extent = parent.shape().extent(m - 1);
  const std::int64_t num_rows = parent.size() / inner_extent;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(m), 0);
  const Value* cell = parent.data();

  for (std::int64_t r = 0; r < num_rows; ++r) {
    // Inner loop over the fastest-varying dimension; each target's child
    // index advances by its own stride (0 if this is the aggregated dim).
    for (std::size_t c = 0; c < num_targets; ++c) {
      std::int64_t ci = row_start[c];
      const std::int64_t delta = last_delta[c];
      Value* out = child_data[c];
      const Value* in = cell;
      for (std::int64_t i = 0; i < inner_extent; ++i) {
        out[ci] += in[i];
        ci += delta;
      }
    }
    cell += inner_extent;
    // Odometer over the outer dimensions, updating each row start.
    for (int d = m - 2; d >= 0; --d) {
      ++idx[d];
      if (idx[d] < parent.shape().extent(d)) {
        for (std::size_t c = 0; c < num_targets; ++c) {
          row_start[c] += strides[c][d];
        }
        break;
      }
      idx[d] = 0;
      for (std::size_t c = 0; c < num_targets; ++c) {
        row_start[c] -= (parent.shape().extent(d) - 1) * strides[c][d];
      }
    }
  }

  AggregationStats stats;
  stats.cells_scanned = parent.size();
  stats.updates = parent.size() * static_cast<std::int64_t>(num_targets);
  return stats;
}

AggregationStats aggregate_children(
    const SparseArray& parent, std::span<const AggregationTarget> targets) {
  const int m = parent.ndim();
  const std::size_t num_targets = targets.size();
  if (num_targets == 0) return {};
  CUBIST_CHECK(m >= 1, "cannot aggregate a scalar parent");

  std::vector<std::vector<std::int64_t>> strides;
  strides.reserve(num_targets);
  for (const auto& target : targets) {
    strides.push_back(projection_strides(parent.shape(), target));
  }
  std::vector<Value*> child_data(num_targets);
  for (std::size_t c = 0; c < num_targets; ++c) {
    child_data[c] = targets[c].child->data();
  }

  // Fast path: every interior chunk shares the same shape, so the map
  // (within-chunk offset) -> (child index contribution) is chunk-invariant.
  // Build it once per target; interior non-zeros then cost one table lookup
  // plus one add per target. Only worthwhile (and only affordable) for
  // reasonably small chunks — past the threshold every chunk takes the
  // decode path instead of allocating a giant table.
  constexpr std::int64_t kMaxTableVolume = std::int64_t{1} << 22;
  const Shape full_chunk_shape{parent.chunk_extents()};
  const std::int64_t full_volume = full_chunk_shape.size();
  const bool use_table = full_volume <= kMaxTableVolume;
  std::vector<std::vector<std::int64_t>> offset_table(num_targets);
  if (use_table) {
    std::vector<std::int64_t> local(static_cast<std::size_t>(m), 0);
    for (std::size_t c = 0; c < num_targets; ++c) {
      offset_table[c].resize(static_cast<std::size_t>(full_volume));
    }
    for (std::int64_t off = 0; off < full_volume; ++off) {
      full_chunk_shape.unravel(off, local.data());
      for (std::size_t c = 0; c < num_targets; ++c) {
        std::int64_t projected = 0;
        for (int d = 0; d < m; ++d) {
          projected += local[d] * strides[c][d];
        }
        offset_table[c][static_cast<std::size_t>(off)] = projected;
      }
    }
  }

  AggregationStats stats;
  std::vector<std::int64_t> chunk_coords(static_cast<std::size_t>(m), 0);
  std::vector<std::int64_t> local(static_cast<std::size_t>(m), 0);
  std::vector<std::int64_t> base_ci(num_targets);

  for (std::int64_t chunk_id = 0; chunk_id < parent.num_chunks(); ++chunk_id) {
    const auto offsets = parent.chunk_offsets(chunk_id);
    if (offsets.empty()) continue;
    const auto values = parent.chunk_values(chunk_id);
    parent.chunk_grid().unravel(chunk_id, chunk_coords.data());
    const auto base = parent.chunk_base(chunk_coords);
    for (std::size_t c = 0; c < num_targets; ++c) {
      std::int64_t projected = 0;
      for (int d = 0; d < m; ++d) {
        projected += base[d] * strides[c][d];
      }
      base_ci[c] = projected;
    }

    if (use_table && parent.chunk_is_full(chunk_coords)) {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        const auto off = offsets[i];
        const Value v = values[i];
        for (std::size_t c = 0; c < num_targets; ++c) {
          child_data[c][base_ci[c] + offset_table[c][off]] += v;
        }
      }
    } else {
      // Boundary chunk: clipped extents, decode offsets directly.
      const Shape local_shape{parent.chunk_shape_at(chunk_coords)};
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        local_shape.unravel(static_cast<std::int64_t>(offsets[i]),
                            local.data());
        const Value v = values[i];
        for (std::size_t c = 0; c < num_targets; ++c) {
          std::int64_t projected = base_ci[c];
          for (int d = 0; d < m; ++d) {
            projected += local[d] * strides[c][d];
          }
          child_data[c][projected] += v;
        }
      }
    }
    stats.cells_scanned += static_cast<std::int64_t>(offsets.size());
  }
  stats.updates = stats.cells_scanned * static_cast<std::int64_t>(num_targets);
  return stats;
}

namespace {

// Out-array stride of each parent dimension for a multi-dim projection
// (0 for aggregated-away dimensions).
std::vector<std::int64_t> multi_projection_strides(
    const Shape& parent_shape, const std::vector<int>& kept_positions,
    const DenseArray& out) {
  const int m = parent_shape.ndim();
  std::vector<std::int64_t> expected;
  for (std::size_t i = 0; i < kept_positions.size(); ++i) {
    const int pos = kept_positions[i];
    CUBIST_CHECK(pos >= 0 && pos < m, "kept position out of range");
    CUBIST_CHECK(i == 0 || kept_positions[i - 1] < pos,
                 "kept positions must be strictly ascending");
    expected.push_back(parent_shape.extent(pos));
  }
  CUBIST_CHECK(out.shape().extents() == expected,
               "projection output shape mismatch");
  std::vector<std::int64_t> strides(static_cast<std::size_t>(m), 0);
  for (std::size_t i = 0; i < kept_positions.size(); ++i) {
    strides[kept_positions[i]] = out.shape().stride(static_cast<int>(i));
  }
  return strides;
}

}  // namespace

AggregationStats project(const DenseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out) {
  CUBIST_CHECK(out != nullptr, "null projection output");
  const std::vector<std::int64_t> strides =
      multi_projection_strides(parent.shape(), kept_positions, *out);
  const int m = parent.ndim();
  Value* dst = out->data();
  if (m == 0) {
    dst[0] += parent[0];
    return {1, 1};
  }
  std::vector<std::int64_t> index(static_cast<std::size_t>(m), 0);
  for (std::int64_t linear = 0; linear < parent.size(); ++linear) {
    parent.shape().unravel(linear, index.data());
    std::int64_t projected = 0;
    for (int d = 0; d < m; ++d) {
      projected += index[d] * strides[d];
    }
    dst[projected] += parent[linear];
  }
  return {parent.size(), parent.size()};
}

AggregationStats project(const SparseArray& parent,
                         const std::vector<int>& kept_positions,
                         DenseArray* out) {
  CUBIST_CHECK(out != nullptr, "null projection output");
  const std::vector<std::int64_t> strides =
      multi_projection_strides(parent.shape(), kept_positions, *out);
  const int m = parent.ndim();
  Value* dst = out->data();
  AggregationStats stats;
  parent.for_each_nonzero([&](const std::int64_t* index, Value value) {
    std::int64_t projected = 0;
    for (int d = 0; d < m; ++d) {
      projected += index[d] * strides[d];
    }
    dst[projected] += value;
    ++stats.cells_scanned;
    ++stats.updates;
  });
  return stats;
}

}  // namespace cubist
