// BlockRange: a rectangular sub-block of a global array, the unit of data
// distribution in the parallel algorithm (each processor owns one block of
// the original array).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "array/shape.h"

namespace cubist {

/// Half-open per-dimension ranges [lo, hi).
class BlockRange {
 public:
  BlockRange() = default;
  BlockRange(std::vector<std::int64_t> lo, std::vector<std::int64_t> hi);

  int ndim() const { return static_cast<int>(lo_.size()); }
  std::int64_t lo(int d) const { return lo_[d]; }
  std::int64_t hi(int d) const { return hi_[d]; }
  std::int64_t extent(int d) const { return hi_[d] - lo_[d]; }

  /// Extents as a vector (shape of the local array).
  std::vector<std::int64_t> extents() const;
  Shape local_shape() const { return Shape(extents()); }
  std::int64_t size() const;

  bool contains(const std::int64_t* global_index) const;

  /// Translates a global index into block-local coordinates.
  void to_local(const std::int64_t* global_index,
                std::int64_t* local_index) const;

  bool operator==(const BlockRange&) const = default;

  std::string to_string() const;

 private:
  std::vector<std::int64_t> lo_;
  std::vector<std::int64_t> hi_;
};

/// [lo, hi) of piece `part` when `extent` is split into `parts` balanced
/// pieces (first `extent % parts` pieces are one larger). With divisible
/// extents — the paper's setting — all pieces are equal.
std::pair<std::int64_t, std::int64_t> split_range(std::int64_t extent,
                                                  std::int64_t parts,
                                                  std::int64_t part);

/// The block owned by grid position `coords` when dimension d is split into
/// `splits[d]` pieces.
BlockRange block_for(const std::vector<std::int64_t>& global_extents,
                     const std::vector<std::int64_t>& splits,
                     const std::vector<std::int64_t>& coords);

}  // namespace cubist
