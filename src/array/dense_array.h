// DenseArray: contiguous row-major n-dimensional array of Values.
//
// All aggregated views in cube construction are dense (paper §6: after
// aggregating along a dimension, zero probability drops sharply), so this is
// the workhorse container for every node of the cube except possibly the
// root input.
#pragma once

#include <algorithm>
#include <vector>

#include "array/shape.h"

namespace cubist {

class DenseArray {
 public:
  DenseArray() = default;

  /// Zero-initialized array of the given shape.
  explicit DenseArray(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.size()), Value{0}) {}

  const Shape& shape() const { return shape_; }
  int ndim() const { return shape_.ndim(); }
  std::int64_t size() const { return shape_.size(); }

  /// Total heap footprint in bytes (what the memory-bound theorems count).
  std::int64_t bytes() const {
    return size() * static_cast<std::int64_t>(sizeof(Value));
  }

  Value* data() { return data_.data(); }
  const Value* data() const { return data_.data(); }

  Value& operator[](std::int64_t linear) {
    CUBIST_DCHECK(linear >= 0 && linear < size(), "linear index out of range");
    return data_[static_cast<std::size_t>(linear)];
  }
  Value operator[](std::int64_t linear) const {
    CUBIST_DCHECK(linear >= 0 && linear < size(), "linear index out of range");
    return data_[static_cast<std::size_t>(linear)];
  }

  Value& at(const std::vector<std::int64_t>& index) {
    return data_[static_cast<std::size_t>(shape_.linear_index(index))];
  }
  Value at(const std::vector<std::int64_t>& index) const {
    return data_[static_cast<std::size_t>(shape_.linear_index(index))];
  }

  void fill(Value v) { std::fill(data_.begin(), data_.end(), v); }

  /// Elementwise `this += other`; shapes must match. This is the combine
  /// step of the parallel reduction (summing partial aggregates).
  void accumulate(const DenseArray& other);

  /// Sum of every cell; aggregating all dimensions must preserve this.
  Value total() const;

  bool operator==(const DenseArray&) const = default;

 private:
  Shape shape_;
  std::vector<Value> data_;
};

}  // namespace cubist
