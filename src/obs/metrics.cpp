// Metrics registry implementation and JSON / Prometheus rendering.
#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace cubist::obs {
namespace {

void json_escape_into(std::ostringstream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
}

void json_number(std::ostringstream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << value;
  out << tmp.str();
}

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
    case MetricSample::Kind::kDrift: return "drift";
  }
  return "unknown";
}

// Prometheus metric line: name{labels} value.
void prom_line(std::ostringstream& out, const std::string& name,
               const std::string& labels, const std::string& extra_label,
               double value) {
  out << name;
  if (!labels.empty() || !extra_label.empty()) {
    out << '{' << labels;
    if (!labels.empty() && !extra_label.empty()) out << ',';
    out << extra_label << '}';
  }
  out << ' ';
  if (std::isfinite(value)) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << value;
    out << tmp.str();
  } else {
    out << "NaN";
  }
  out << '\n';
}

}  // namespace

HistogramSummary Histogram::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSummary s;
  s.count = sketch_.count();
  s.sum = sum_;
  if (s.count > 0) {
    s.p50 = sketch_.quantile(0.50);
    s.p90 = sketch_.quantile(0.90);
    s.p99 = sketch_.quantile(0.99);
    s.p999 = sketch_.quantile(0.999);
  }
  s.memory_bytes = sketch_.memory_bytes();
  s.memory_bound_bytes = sketch_.memory_bound_bytes();
  return s;
}

void DriftGauge::record(double observed, double model) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!(model > 0.0)) {
    ++ignored_;
    return;
  }
  const double ratio = observed / model;
  if (samples_ == 0) {
    min_ratio_ = ratio;
    max_ratio_ = ratio;
  } else {
    if (ratio < min_ratio_) min_ratio_ = ratio;
    if (ratio > max_ratio_) max_ratio_ = ratio;
  }
  ++samples_;
  observed_sum_ += observed;
  model_sum_ += model;
}

DriftSummary DriftGauge::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DriftSummary s;
  s.samples = samples_;
  s.observed_sum = observed_sum_;
  s.model_sum = model_sum_;
  s.min_ratio = min_ratio_;
  s.max_ratio = max_ratio_;
  s.tolerance_min = tolerance_min_;
  s.tolerance_max = tolerance_max_;
  if (samples_ > 0 && model_sum_ > 0.0) {
    s.ratio = observed_sum_ / model_sum_;
    s.within = s.ratio >= tolerance_min_ && s.ratio <= tolerance_max_;
  } else {
    s.ratio = 0.0;
    s.within = true;  // vacuous: nothing measured, nothing drifted
  }
  return s;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Entry& Registry::entry(const std::string& name,
                                 const std::string& labels,
                                 MetricSample::Kind kind,
                                 const std::string& help) {
  // Caller holds mutex_.
  auto [it, inserted] = entries_.try_emplace({name, labels});
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
  } else {
    CUBIST_CHECK(e.kind == kind, "metric '" << name << "' re-registered as "
                                            << kind_name(kind) << ", was "
                                            << kind_name(e.kind));
  }
  return e;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name, labels, MetricSample::Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name, labels, MetricSample::Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, double epsilon,
                               std::int64_t max_count, const std::string& help,
                               const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name, labels, MetricSample::Kind::kHistogram, help);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(epsilon, max_count);
  }
  return *e.histogram;
}

DriftGauge& Registry::drift(const std::string& name, double tolerance_min,
                            double tolerance_max, const std::string& help,
                            const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name, labels, MetricSample::Kind::kDrift, help);
  if (!e.drift) {
    e.drift = std::make_unique<DriftGauge>(tolerance_min, tolerance_max);
  }
  return *e.drift;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.samples.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample sample;
    sample.kind = e.kind;
    sample.name = key.first;
    sample.labels = key.second;
    sample.help = e.help;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        sample.counter_value = e.counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.gauge_value = e.gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        sample.histogram = e.histogram->summary();
        break;
      case MetricSample::Kind::kDrift:
        sample.drift = e.drift->summary();
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  // std::map iteration is already (name, labels)-ordered: deterministic.
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"cubist-metrics/1\",\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"";
    json_escape_into(out, s.name);
    out << "\",\"kind\":\"" << kind_name(s.kind) << '"';
    if (!s.labels.empty()) {
      out << ",\"labels\":\"";
      json_escape_into(out, s.labels);
      out << '"';
    }
    if (!s.help.empty()) {
      out << ",\"help\":\"";
      json_escape_into(out, s.help);
      out << '"';
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out << ",\"value\":" << s.counter_value;
        break;
      case MetricSample::Kind::kGauge:
        out << ",\"value\":";
        json_number(out, s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram:
        out << ",\"count\":" << s.histogram.count << ",\"sum\":";
        json_number(out, s.histogram.sum);
        out << ",\"p50\":";
        json_number(out, s.histogram.p50);
        out << ",\"p90\":";
        json_number(out, s.histogram.p90);
        out << ",\"p99\":";
        json_number(out, s.histogram.p99);
        out << ",\"p999\":";
        json_number(out, s.histogram.p999);
        out << ",\"memory_bytes\":" << s.histogram.memory_bytes
            << ",\"memory_bound_bytes\":" << s.histogram.memory_bound_bytes;
        break;
      case MetricSample::Kind::kDrift:
        out << ",\"samples\":" << s.drift.samples << ",\"ratio\":";
        json_number(out, s.drift.ratio);
        out << ",\"observed_sum\":";
        json_number(out, s.drift.observed_sum);
        out << ",\"model_sum\":";
        json_number(out, s.drift.model_sum);
        out << ",\"min_ratio\":";
        json_number(out, s.drift.min_ratio);
        out << ",\"max_ratio\":";
        json_number(out, s.drift.max_ratio);
        out << ",\"tolerance_min\":";
        json_number(out, s.drift.tolerance_min);
        out << ",\"tolerance_max\":";
        json_number(out, s.drift.tolerance_max);
        out << ",\"within\":" << (s.drift.within ? "true" : "false");
        break;
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream out;
  std::string last_header;
  for (const MetricSample& s : samples) {
    if (s.name != last_header) {
      last_header = s.name;
      if (!s.help.empty()) {
        out << "# HELP " << s.name << ' ' << s.help << '\n';
      }
      const char* prom_type = "gauge";
      if (s.kind == MetricSample::Kind::kCounter) prom_type = "counter";
      if (s.kind == MetricSample::Kind::kHistogram) prom_type = "summary";
      out << "# TYPE " << s.name << ' ' << prom_type << '\n';
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        prom_line(out, s.name, s.labels, "",
                  static_cast<double>(s.counter_value));
        break;
      case MetricSample::Kind::kGauge:
        prom_line(out, s.name, s.labels, "", s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram:
        prom_line(out, s.name, s.labels, "quantile=\"0.5\"", s.histogram.p50);
        prom_line(out, s.name, s.labels, "quantile=\"0.9\"", s.histogram.p90);
        prom_line(out, s.name, s.labels, "quantile=\"0.99\"", s.histogram.p99);
        prom_line(out, s.name, s.labels, "quantile=\"0.999\"",
                  s.histogram.p999);
        prom_line(out, s.name + "_sum", s.labels, "", s.histogram.sum);
        prom_line(out, s.name + "_count", s.labels, "",
                  static_cast<double>(s.histogram.count));
        break;
      case MetricSample::Kind::kDrift:
        prom_line(out, s.name, s.labels, "", s.drift.ratio);
        prom_line(out, s.name + "_observed", s.labels, "",
                  s.drift.observed_sum);
        prom_line(out, s.name + "_model", s.labels, "", s.drift.model_sum);
        prom_line(out, s.name + "_samples", s.labels, "",
                  static_cast<double>(s.drift.samples));
        break;
    }
  }
  return out.str();
}

}  // namespace cubist::obs
