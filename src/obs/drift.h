// Canonical drift gauges: the paper's static certificates as telemetry.
//
// Three observed-vs-model ratios, each pairing a measurement the runtime
// already produces with a closed form the verifier already certifies:
//
//   cubist_drift_wire_vs_lemma1     — wire bytes shipped per view vs the
//       dense Lemma-1 volume bound (volume_by_view_elements · value
//       size). The wire codec may only ever undercut the bound, so the
//       tolerance is (0, 1]: a ratio above 1 means traffic escaped the
//       certificate, far below the floor means the accounting broke.
//   cubist_drift_reduce_clock_vs_sim — the root rank's measured virtual
//       clock advance across one Comm::reduce vs the cost tuner's
//       simulate_reduce_seconds prediction for the same (algorithm,
//       group, payload). The simulation replays the same charging rules
//       the transport applies, so this certifies the tuner still models
//       the collective it tuned.
//   cubist_drift_query_cost_vs_cells — measured cells_scanned per routed
//       query vs the query_cost() planning model. Exact on the
//       projection path by the materialize_from contract, hence the
//       tight window.
//
// Aggregate ratio = sum(observed)/sum(model); tolerances are gated by
// tools/bench_report.py --obs in CI (docs/ANALYSIS.md "Drift
// tolerances"). Recording is guarded by `drift_enabled()` where the
// model side costs something to evaluate (the reduce gauge re-runs the
// event simulation); enable via CUBIST_DRIFT=1 or set_drift_enabled().
#pragma once

#include "obs/metrics.h"

namespace cubist::obs {

inline constexpr const char* kDriftWireVsLemma1 = "cubist_drift_wire_vs_lemma1";
inline constexpr const char* kDriftReduceClockVsSim =
    "cubist_drift_reduce_clock_vs_sim";
inline constexpr const char* kDriftQueryCostVsCells =
    "cubist_drift_query_cost_vs_cells";

// Tolerance windows on the aggregate observed/model ratio. Rationale per
// gauge above; numbers recorded in docs/ANALYSIS.md.
inline constexpr double kWireVsLemma1Min = 0.005;
inline constexpr double kWireVsLemma1Max = 1.000001;
inline constexpr double kReduceClockVsSimMin = 0.5;
inline constexpr double kReduceClockVsSimMax = 1.5;
inline constexpr double kQueryCostVsCellsMin = 0.99;
inline constexpr double kQueryCostVsCellsMax = 1.01;

/// True when drift recording is on (CUBIST_DRIFT env or
/// set_drift_enabled). One relaxed atomic load.
bool drift_enabled();
void set_drift_enabled(bool enabled);

/// The canonical gauges, registered in `registry` (global by default)
/// with their standard tolerances on first use.
DriftGauge& wire_vs_lemma1_gauge(Registry& registry = Registry::global());
DriftGauge& reduce_clock_vs_sim_gauge(Registry& registry = Registry::global());
DriftGauge& query_cost_vs_cells_gauge(Registry& registry = Registry::global());

}  // namespace cubist::obs
