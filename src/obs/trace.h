// Low-overhead span tracer: per-thread lock-free buffers, Chrome JSON out.
//
// The observability layer's timeline half (docs/OBSERVABILITY.md; the
// metrics half is obs/metrics.h). Instrumented code marks regions with
// RAII `Span`s and point events with `Instant`s; both carry typed
// key-value tags. Records land in a per-thread bounded buffer — the
// emitting thread is the only writer, publication is one release store of
// the record count, so emission takes no locks and never blocks another
// thread. A capture (after the instrumented work quiesces, or at any time
// for a consistent prefix) snapshots every thread's records and exports
// them as Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.
//
// Cost contract: when tracing is disabled every Span/Instant is one
// relaxed atomic load and a branch — cheap enough to leave compiled into
// hot paths permanently (bench/bench_obs.cpp BM_TraceOverhead enforces
// the ≤1% budget on the dense kernel and the serving path;
// docs/PERFORMANCE.md records the numbers). Enablement is runtime-only:
// the CUBIST_TRACE environment variable (1/0) sets the initial state and
// Tracer::set_enabled flips it programmatically.
//
// Buffers are bounded, not wrapping: once a thread's buffer is full,
// further records are counted in `dropped` and discarded, so captured
// records are a deterministic PREFIX of the thread's emission sequence
// (a wrapping ring would make the retained window depend on timing).
// Capacity is per thread (set_buffer_capacity, CUBIST_TRACE_BUFFER).
//
// Thread identity: tracks are keyed by a caller-assigned (name, tid)
// identity — the minimpi runtime names rank threads, the thread pool
// names workers — so track ids are stable across runs regardless of
// thread creation order. Unnamed threads get registration-order ids in a
// reserved range. Tag keys / string values and span names must be
// STATIC strings (literals or arena-stable): records store the pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cubist::obs {

/// Stable track-id bases per thread role (Chrome "tid"). Roles never
/// collide: each base is far above any realistic index of the previous.
inline constexpr int kTidMain = 0;
inline constexpr int kTidRankBase = 1000;
inline constexpr int kTidWorkerBase = 2000;
inline constexpr int kTidClientBase = 3000;
inline constexpr int kTidUnnamedBase = 9000;

inline constexpr int kMaxTraceTags = 6;

/// One typed key-value annotation of a span or instant.
struct TraceTag {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };
  const char* key = nullptr;  // static string
  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  const char* string_value = nullptr;  // static string
};

/// One recorded event. `duration_ns == 0 && instant` marks a point event.
struct TraceRecord {
  const char* name = nullptr;      // static string
  const char* category = nullptr;  // static string
  std::uint64_t start_ns = 0;      // steady-clock nanoseconds
  std::uint64_t duration_ns = 0;
  bool instant = false;
  std::uint8_t num_tags = 0;
  TraceTag tags[kMaxTraceTags];
};

/// Snapshot of one thread's records (a deterministic emission prefix).
struct ThreadCapture {
  int tid = 0;
  std::string track_name;
  std::int64_t dropped = 0;
  std::vector<TraceRecord> records;
};

/// Snapshot of every thread's records, ordered by tid (registration
/// order within equal tids).
struct TraceCapture {
  std::vector<ThreadCapture> threads;

  std::int64_t total_records() const;
  std::int64_t total_dropped() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}): thread-name
  /// metadata, "X" complete events for spans, "i" instants, timestamps
  /// in fractional microseconds. Loadable in Perfetto.
  std::string to_chrome_json() const;

  /// Timestamp-free structural digest: per thread, the sequence of
  /// (category, name, tag keys, string/int tag values — doubles
  /// excluded as timing-dependent). Two runs of a deterministic workload
  /// produce identical signatures even though every timestamp differs.
  std::string structure_signature() const;
};

namespace internal {

/// Per-thread record buffer. The owning thread is the only writer;
/// `count` is published with release stores so concurrent captures read
/// a consistent prefix.
struct ThreadBuffer {
  int tid = 0;
  std::string track_name;
  std::vector<TraceRecord> records;  // resized to capacity up front
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> dropped{0};
  std::uint64_t registration_order = 0;

  void emit(const TraceRecord& record) {
    const std::int64_t n = count.load(std::memory_order_relaxed);
    if (n >= static_cast<std::int64_t>(records.size())) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    records[static_cast<std::size_t>(n)] = record;
    count.store(n + 1, std::memory_order_release);
  }
};

}  // namespace internal

class Tracer {
 public:
  /// The process-wide tracer. First use reads CUBIST_TRACE ("1"/"true"
  /// enables) and CUBIST_TRACE_BUFFER (records per thread).
  static Tracer& instance();

  /// The one check every Span/Instant makes first. Relaxed load.
  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Per-thread record capacity for buffers created AFTER the call.
  void set_buffer_capacity(std::int64_t records);
  std::int64_t buffer_capacity() const;

  /// Clears every thread's records and drop counters (buffers and
  /// identities survive). Call while instrumented code is quiescent:
  /// records emitted concurrently with a reset may land on either side.
  void reset();

  /// Snapshots all threads. Safe concurrently with emission — each
  /// thread's snapshot is a consistent prefix of its emission order.
  TraceCapture capture() const;

  /// This thread's buffer, created (and registered) on first use.
  internal::ThreadBuffer& this_thread_buffer();

 private:
  friend void set_thread_identity(const std::string& name, int tid);

  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // registry of buffers, not the hot path
  std::atomic<std::int64_t> capacity_;
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers_;
  std::uint64_t registrations_ = 0;
  int next_unnamed_tid_ = kTidUnnamedBase;
};

/// Names the calling thread's trace track BEFORE it first emits:
/// `set_thread_identity("rank-3", kTidRankBase + 3)`. Re-identifying a
/// thread renames its (single) buffer; call only while no capture is in
/// flight. Identity persists for the thread's lifetime.
void set_thread_identity(const std::string& name, int tid);

/// Installs a ThreadPool worker-start hook that names pool workers
/// "pool-worker-<i>" at kTidWorkerBase + i. Applies to workers spawned
/// after the call — invoke before the global pool's first use (the
/// cubist-trace tool does this up front).
void install_worker_identity_hook();

/// RAII identity for worker/rank threads whose role outlives one task:
/// restores the previous identity on destruction.
class ScopedThreadIdentity {
 public:
  ScopedThreadIdentity(const std::string& name, int tid);
  ~ScopedThreadIdentity();

  ScopedThreadIdentity(const ScopedThreadIdentity&) = delete;
  ScopedThreadIdentity& operator=(const ScopedThreadIdentity&) = delete;

 private:
  std::string previous_name_;
  int previous_tid_ = kTidMain;
  bool previous_named_ = false;
};

std::uint64_t trace_now_ns();

/// RAII timed region. Construction stamps the start, destruction stamps
/// the duration and commits the record. When tracing is disabled the
/// constructor is one relaxed load + branch and everything else no-ops.
class Span {
 public:
  Span(const char* category, const char* name) {
    if (!Tracer::enabled()) return;
    begin(category, name);
  }
  ~Span() {
    if (buffer_ != nullptr) commit();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& tag(const char* key, std::int64_t value);
  Span& tag(const char* key, double value);
  Span& tag(const char* key, const char* value);  // static string

  /// Commits the span now instead of at scope exit (idempotent).
  void end() {
    if (buffer_ != nullptr) commit();
  }

  bool active() const { return buffer_ != nullptr; }

 private:
  void begin(const char* category, const char* name);
  void commit();

  internal::ThreadBuffer* buffer_ = nullptr;
  TraceRecord record_;
};

/// Point event; commits on destruction so tags can be chained:
/// `Instant("serving", "cache.miss").tag("bytes", n);`
class Instant {
 public:
  Instant(const char* category, const char* name) {
    if (!Tracer::enabled()) return;
    begin(category, name);
  }
  ~Instant() {
    if (buffer_ != nullptr) commit();
  }

  Instant(const Instant&) = delete;
  Instant& operator=(const Instant&) = delete;

  Instant& tag(const char* key, std::int64_t value);
  Instant& tag(const char* key, double value);
  Instant& tag(const char* key, const char* value);  // static string

 private:
  void begin(const char* category, const char* name);
  void commit();

  internal::ThreadBuffer* buffer_ = nullptr;
  TraceRecord record_;
};

}  // namespace cubist::obs
