// Canonical drift gauge registration and the runtime enable switch.
#include "obs/drift.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cubist::obs {
namespace {

std::atomic<bool>& drift_flag() {
  static std::atomic<bool> flag = [] {
    const char* value = std::getenv("CUBIST_DRIFT");
    return value != nullptr &&
           (std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
            std::strcmp(value, "on") == 0);
  }();
  return flag;
}

}  // namespace

bool drift_enabled() { return drift_flag().load(std::memory_order_relaxed); }

void set_drift_enabled(bool enabled) {
  drift_flag().store(enabled, std::memory_order_relaxed);
}

DriftGauge& wire_vs_lemma1_gauge(Registry& registry) {
  return registry.drift(
      kDriftWireVsLemma1, kWireVsLemma1Min, kWireVsLemma1Max,
      "observed wire bytes per view over the dense Lemma-1 bound");
}

DriftGauge& reduce_clock_vs_sim_gauge(Registry& registry) {
  return registry.drift(
      kDriftReduceClockVsSim, kReduceClockVsSimMin, kReduceClockVsSimMax,
      "measured reduce virtual-clock seconds over simulate_reduce_seconds");
}

DriftGauge& query_cost_vs_cells_gauge(Registry& registry) {
  return registry.drift(
      kDriftQueryCostVsCells, kQueryCostVsCellsMin, kQueryCostVsCellsMax,
      "measured cells_scanned per routed query over the query_cost model");
}

}  // namespace cubist::obs
