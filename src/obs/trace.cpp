// Tracer implementation: buffer registry, capture, Chrome JSON export.
#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/thread_pool.h"

namespace cubist::obs {
namespace {

constexpr std::int64_t kDefaultBufferCapacity = 1 << 16;

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "on") == 0;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || parsed <= 0) return fallback;
  return static_cast<std::int64_t>(parsed);
}

// Identity the calling thread wants for its (lazily created) buffer.
struct PendingIdentity {
  std::string name;
  int tid = kTidMain;
  bool named = false;
};

thread_local PendingIdentity t_identity;
thread_local internal::ThreadBuffer* t_buffer = nullptr;

void json_append_escaped(std::ostringstream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out << hex;
        } else {
          out << c;
        }
    }
  }
}

void append_args(std::ostringstream& out, const TraceRecord& record) {
  out << "\"args\":{";
  for (std::uint8_t i = 0; i < record.num_tags; ++i) {
    const TraceTag& tag = record.tags[i];
    if (i > 0) out << ',';
    out << '"';
    json_append_escaped(out, tag.key);
    out << "\":";
    switch (tag.kind) {
      case TraceTag::Kind::kInt: out << tag.int_value; break;
      case TraceTag::Kind::kDouble: out << tag.double_value; break;
      case TraceTag::Kind::kString:
        out << '"';
        json_append_escaped(out, tag.string_value);
        out << '"';
        break;
    }
  }
  out << '}';
}

}  // namespace

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer() : capacity_(env_int("CUBIST_TRACE_BUFFER", kDefaultBufferCapacity)) {
  enabled_.store(env_truthy("CUBIST_TRACE"), std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_buffer_capacity(std::int64_t records) {
  CUBIST_CHECK(records > 0, "trace buffer capacity must be positive");
  capacity_.store(records, std::memory_order_relaxed);
}

std::int64_t Tracer::buffer_capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->count.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

internal::ThreadBuffer& Tracer::this_thread_buffer() {
  if (t_buffer != nullptr) return *t_buffer;
  auto buffer = std::make_shared<internal::ThreadBuffer>();
  buffer->records.resize(
      static_cast<std::size_t>(capacity_.load(std::memory_order_relaxed)));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (t_identity.named) {
      buffer->tid = t_identity.tid;
      buffer->track_name = t_identity.name;
    } else {
      buffer->tid = next_unnamed_tid_++;
      buffer->track_name = "thread-" + std::to_string(buffer->tid);
    }
    buffer->registration_order = registrations_++;
    buffers_.push_back(buffer);
  }
  t_buffer = buffer.get();
  return *t_buffer;
}

TraceCapture Tracer::capture() const {
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  TraceCapture capture;
  capture.threads.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    ThreadCapture thread;
    thread.tid = buffer->tid;
    thread.track_name = buffer->track_name;
    // Acquire pairs with the emitter's release so the first `n` records
    // are fully written before we copy them.
    const std::int64_t n = buffer->count.load(std::memory_order_acquire);
    thread.dropped = buffer->dropped.load(std::memory_order_relaxed);
    thread.records.assign(buffer->records.begin(),
                          buffer->records.begin() + n);
    capture.threads.push_back(std::move(thread));
  }
  std::stable_sort(capture.threads.begin(), capture.threads.end(),
                   [](const ThreadCapture& a, const ThreadCapture& b) {
                     return a.tid < b.tid;
                   });
  return capture;
}

void set_thread_identity(const std::string& name, int tid) {
  t_identity.name = name;
  t_identity.tid = tid;
  t_identity.named = true;
  if (t_buffer != nullptr) {
    // Rename the existing buffer; the registry mutex orders this against
    // captures (callers must not re-identify mid-capture).
    std::lock_guard<std::mutex> lock(Tracer::instance().mutex_);
    t_buffer->tid = tid;
    t_buffer->track_name = name;
  }
}

void install_worker_identity_hook() {
  ThreadPool::set_worker_thread_hook([](int worker_index) {
    set_thread_identity("pool-worker-" + std::to_string(worker_index),
                        kTidWorkerBase + worker_index);
  });
}

ScopedThreadIdentity::ScopedThreadIdentity(const std::string& name, int tid) {
  previous_name_ = t_identity.name;
  previous_tid_ = t_identity.tid;
  previous_named_ = t_identity.named;
  set_thread_identity(name, tid);
}

ScopedThreadIdentity::~ScopedThreadIdentity() {
  if (previous_named_) {
    set_thread_identity(previous_name_, previous_tid_);
  } else {
    t_identity.named = false;
  }
}

std::int64_t TraceCapture::total_records() const {
  std::int64_t total = 0;
  for (const auto& thread : threads) {
    total += static_cast<std::int64_t>(thread.records.size());
  }
  return total;
}

std::int64_t TraceCapture::total_dropped() const {
  std::int64_t total = 0;
  for (const auto& thread : threads) total += thread.dropped;
  return total;
}

std::string TraceCapture::to_chrome_json() const {
  std::ostringstream out;
  out.setf(std::ios::fmtflags(0), std::ios::floatfield);
  out.precision(3);
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&out, &first] {
    if (!first) out << ',';
    first = false;
  };
  for (const auto& thread : threads) {
    comma();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << thread.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_append_escaped(out, thread.track_name.c_str());
    out << "\"}}";
  }
  for (const auto& thread : threads) {
    for (const auto& record : thread.records) {
      comma();
      out << "{\"ph\":\"" << (record.instant ? 'i' : 'X')
          << "\",\"pid\":1,\"tid\":" << thread.tid << ",\"name\":\"";
      json_append_escaped(out, record.name);
      out << "\",\"cat\":\"";
      json_append_escaped(out, record.category);
      out << "\",\"ts\":" << std::fixed
          << static_cast<double>(record.start_ns) / 1000.0;
      out.unsetf(std::ios::floatfield);
      if (record.instant) {
        out << ",\"s\":\"t\"";
      } else {
        out << ",\"dur\":" << std::fixed
            << static_cast<double>(record.duration_ns) / 1000.0;
        out.unsetf(std::ios::floatfield);
      }
      out << ',';
      append_args(out, record);
      out << '}';
    }
  }
  out << "]}";
  return out.str();
}

std::string TraceCapture::structure_signature() const {
  std::ostringstream out;
  for (const auto& thread : threads) {
    out << thread.track_name << '#' << thread.tid << '\n';
    for (const auto& record : thread.records) {
      out << "  " << record.category << '/' << record.name
          << (record.instant ? "[i]" : "[x]");
      for (std::uint8_t i = 0; i < record.num_tags; ++i) {
        const TraceTag& tag = record.tags[i];
        out << ' ' << tag.key << '=';
        switch (tag.kind) {
          case TraceTag::Kind::kInt: out << tag.int_value; break;
          case TraceTag::Kind::kDouble: out << "<f>"; break;
          case TraceTag::Kind::kString: out << tag.string_value; break;
        }
      }
      out << '\n';
    }
  }
  return out.str();
}

namespace {

void add_tag(TraceRecord& record, TraceTag tag) {
  if (record.num_tags >= kMaxTraceTags) return;  // extra tags are dropped
  record.tags[record.num_tags++] = tag;
}

}  // namespace

void Span::begin(const char* category, const char* name) {
  buffer_ = &Tracer::instance().this_thread_buffer();
  record_.name = name;
  record_.category = category;
  record_.start_ns = trace_now_ns();
}

void Span::commit() {
  record_.duration_ns = trace_now_ns() - record_.start_ns;
  buffer_->emit(record_);
  buffer_ = nullptr;
}

Span& Span::tag(const char* key, std::int64_t value) {
  if (buffer_ != nullptr) {
    add_tag(record_, TraceTag{key, TraceTag::Kind::kInt, value, 0.0, nullptr});
  }
  return *this;
}

Span& Span::tag(const char* key, double value) {
  if (buffer_ != nullptr) {
    add_tag(record_, TraceTag{key, TraceTag::Kind::kDouble, 0, value, nullptr});
  }
  return *this;
}

Span& Span::tag(const char* key, const char* value) {
  if (buffer_ != nullptr) {
    add_tag(record_, TraceTag{key, TraceTag::Kind::kString, 0, 0.0, value});
  }
  return *this;
}

void Instant::begin(const char* category, const char* name) {
  buffer_ = &Tracer::instance().this_thread_buffer();
  record_.name = name;
  record_.category = category;
  record_.start_ns = trace_now_ns();
  record_.instant = true;
}

void Instant::commit() {
  buffer_->emit(record_);
  buffer_ = nullptr;
}

Instant& Instant::tag(const char* key, std::int64_t value) {
  if (buffer_ != nullptr) {
    add_tag(record_, TraceTag{key, TraceTag::Kind::kInt, value, 0.0, nullptr});
  }
  return *this;
}

Instant& Instant::tag(const char* key, double value) {
  if (buffer_ != nullptr) {
    add_tag(record_, TraceTag{key, TraceTag::Kind::kDouble, 0, value, nullptr});
  }
  return *this;
}

Instant& Instant::tag(const char* key, const char* value) {
  if (buffer_ != nullptr) {
    add_tag(record_, TraceTag{key, TraceTag::Kind::kString, 0, 0.0, value});
  }
  return *this;
}

}  // namespace cubist::obs
