// Metrics registry: counters, gauges, histograms, drift gauges; one export.
//
// The observability layer's aggregate half (the timeline half is
// obs/trace.h). Subsystems register named instruments once and update
// them on the hot path with plain atomics (histograms take a short mutex
// around a QuantileSketch — the same bounded-memory sketch serving has
// always used). A `MetricsSnapshot` renders every instrument through one
// path as JSON ("cubist-metrics/1") or Prometheus text exposition, so
// `VolumeLedger`, `ServingStats`, cache stats, and scratch high-water all
// export identically instead of each hand-rolling a struct.
//
// Drift gauges are the paper-specific instrument: each one accumulates
// (observed, model) pairs — wire bytes vs the Lemma-1 dense bound,
// measured reduce clock vs `simulate_reduce_seconds`, measured
// `cells_scanned` vs `query_cost()` — and exports the aggregate
// observed/model ratio plus the per-sample extremes, with a tolerance
// window `within()` that CI gates on (docs/OBSERVABILITY.md,
// docs/ANALYSIS.md "Drift tolerances").
//
// Naming: `cubist_<subsystem>_<what>_<unit>` (e.g.
// `cubist_comm_wire_bytes`), drift gauges `cubist_drift_<observed>_vs_
// <model>`. Labels are attached at registration as a preformatted
// `key="value"` list; the same name may appear with many label sets.
//
// Instruments are created through a Registry and live as long as it
// does; references returned by the getters are stable. `Registry::
// global()` is the process default; engines that need isolated stats
// (two QueryEngines in one test) construct their own.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/quantile_sketch.h"

namespace cubist::obs {

/// Monotonically increasing count (events, bytes, hits). Thread-safe.
class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins scalar; `set_max` keeps a high-water mark. Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void set_max(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time digest of a histogram.
struct HistogramSummary {
  std::int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  std::int64_t memory_bytes = 0;
  std::int64_t memory_bound_bytes = 0;
};

/// Bounded-memory value distribution over a QuantileSketch. Thread-safe
/// (one short mutex per observation — fine off the innermost loops).
class Histogram {
 public:
  Histogram(double epsilon, std::int64_t max_count)
      : sketch_(epsilon, max_count) {}

  void observe(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    sketch_.add(value);
    sum_ += value;
  }

  HistogramSummary summary() const;

 private:
  mutable std::mutex mutex_;
  QuantileSketch sketch_;
  double sum_ = 0.0;
};

/// Point-in-time digest of a drift gauge.
struct DriftSummary {
  std::int64_t samples = 0;
  double observed_sum = 0.0;
  double model_sum = 0.0;
  double ratio = 0.0;      // observed_sum / model_sum; 0 with no samples
  double min_ratio = 0.0;  // smallest per-sample ratio seen
  double max_ratio = 0.0;  // largest per-sample ratio seen
  double tolerance_min = 0.0;
  double tolerance_max = 0.0;
  bool within = true;  // aggregate ratio inside tolerance (or no samples)
};

/// Observed-vs-model ratio with a CI-checkable tolerance window. Each
/// `record(observed, model)` call is one (prediction, measurement) pair;
/// the exported ratio is aggregate observed_sum/model_sum (robust to
/// tiny-denominator samples), with per-sample extremes kept for
/// diagnostics. Pairs with model <= 0 are counted as ignored rather
/// than poisoning the ratio. Thread-safe.
class DriftGauge {
 public:
  DriftGauge(double tolerance_min, double tolerance_max)
      : tolerance_min_(tolerance_min), tolerance_max_(tolerance_max) {}

  void record(double observed, double model);

  DriftSummary summary() const;

  /// True when there are no samples yet or the aggregate ratio is inside
  /// [tolerance_min, tolerance_max].
  bool within() const { return summary().within; }

 private:
  const double tolerance_min_;
  const double tolerance_max_;
  mutable std::mutex mutex_;
  std::int64_t samples_ = 0;
  std::int64_t ignored_ = 0;
  double observed_sum_ = 0.0;
  double model_sum_ = 0.0;
  double min_ratio_ = 0.0;
  double max_ratio_ = 0.0;
};

/// One rendered instrument (see MetricsSnapshot).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram, kDrift };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string labels;  // preformatted `key="value",key="value"`, may be empty
  std::string help;
  std::int64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramSummary histogram;
  DriftSummary drift;
};

/// Everything the registry knew at snapshot time, renderable as JSON or
/// Prometheus text. Samples are sorted by (name, labels) so exports are
/// deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  std::string to_json() const;
  std::string to_prometheus() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry.
  static Registry& global();

  /// Instrument getters: create on first use, return the existing
  /// instrument on re-registration with the same (name, labels). A name
  /// re-registered as a different instrument kind throws. References
  /// stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, double epsilon,
                       std::int64_t max_count, const std::string& help = "",
                       const std::string& labels = "");
  DriftGauge& drift(const std::string& name, double tolerance_min,
                    double tolerance_max, const std::string& help = "",
                    const std::string& labels = "");

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<DriftGauge> drift;
  };

  Entry& entry(const std::string& name, const std::string& labels,
               MetricSample::Kind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, Entry> entries_;
};

}  // namespace cubist::obs
